"""MaintenanceService: roll-ups, threshold compaction, snapshot GC."""

import numpy as np
import pytest

from repro.catalog import (
    CatalogTable,
    DirectoryCatalogStore,
    MaintenancePolicy,
    MaintenanceService,
    MemoryCatalogStore,
)
from repro.core import Predicate, Table, WriterOptions


def _table(start, n):
    return Table(
        {
            "id": np.arange(start, start + n, dtype=np.int64),
            "score": np.linspace(0.0, 1.0, n).astype(np.float32),
        }
    )


def _opts():
    return WriterOptions(rows_per_page=64, rows_per_group=256)


def _service(table, **overrides):
    policy = MaintenancePolicy(
        rollup_small_file_rows=1024,
        rollup_target_rows=4096,
        compact_deleted_fraction=0.25,
        keep_snapshots=2,
        writer_options=_opts(),
        **overrides,
    )
    return MaintenanceService(table, policy)


@pytest.fixture
def table():
    return CatalogTable.create(MemoryCatalogStore())


# -- planning ---------------------------------------------------------------

def test_plan_flags_small_files_for_rollup(table):
    for i in range(4):
        table.append(_table(i * 100, 100), options=_opts())
    jobs = _service(table).plan()
    rollups = [j for j in jobs if j.kind == "rollup"]
    assert len(rollups) == 1
    assert len(rollups[0].file_ids) == 4


def test_plan_flags_high_deleted_fraction_for_compaction(table):
    table.append(_table(0, 1000), options=_opts())
    table.delete(Predicate("id", max_value=399))  # 40% deleted
    jobs = _service(table).plan()
    kinds = {j.kind for j in jobs}
    assert "compact" in kinds
    compact_job = next(j for j in jobs if j.kind == "compact")
    assert "40%" in compact_job.reason


def test_keep_snapshots_zero_expires_all_but_head(table):
    for i in range(3):
        table.append(_table(i * 100, 100), options=_opts())
    policy = MaintenancePolicy(keep_snapshots=0, writer_options=_opts())
    jobs = MaintenanceService(table, policy).plan()
    expire = next(j for j in jobs if j.kind == "expire")
    assert set(expire.snapshot_ids) == {0, 1, 2}  # HEAD (3) survives


def test_plan_respects_compaction_threshold(table):
    table.append(_table(0, 1000), options=_opts())
    table.delete(Predicate("id", max_value=99))  # only 10% deleted
    jobs = _service(table).plan()
    assert not [j for j in jobs if j.kind == "compact"]


# -- execution --------------------------------------------------------------

def test_rollup_merges_small_files_and_preserves_rows(table):
    for i in range(5):
        table.append(_table(i * 200, 200), options=_opts())
    before = np.sort(np.asarray(table.read(["id"]).column("id")))
    report = _service(table).run_once()
    assert report.files_merged == 5
    head = table.current_snapshot()
    assert len(head.files) == 1
    assert head.operation == "rollup"
    after = np.sort(np.asarray(table.read(["id"]).column("id")))
    assert np.array_equal(before, after)


def test_compaction_reclaims_bytes_after_deletes(table):
    table.append(_table(0, 2000), options=_opts())
    bytes_before = table.current_snapshot().total_bytes
    table.delete(Predicate("id", max_value=999))
    report = _service(table).run_once()
    assert report.files_compacted == 1
    assert report.bytes_reclaimed > 0
    head = table.current_snapshot()
    assert head.total_bytes < bytes_before
    assert head.files[0].deleted_count == 0
    got = np.asarray(table.read(["id"]).column("id"))
    assert np.array_equal(got, np.arange(1000, 2000))


def test_expire_drops_old_snapshots_and_orphan_files(table):
    for i in range(5):
        table.append(_table(i * 100, 100), options=_opts())
    table.delete(Predicate("id", max_value=49))
    svc = _service(table)
    report = svc.run_once()
    assert report.snapshots_expired > 0
    retained = [s.snapshot_id for s in table.history()]
    assert len(retained) <= 2 + report.jobs_run  # maintenance commits add ids
    # every surviving data file is referenced by a retained snapshot
    referenced = set()
    for snap in table.history():
        referenced |= snap.file_ids()
    assert set(table.store.list_data()) <= referenced | table.pinned_file_ids()


def test_gc_refuses_files_held_by_pinned_reader(table):
    table.append(_table(0, 500), options=_opts())
    pinned = table.pin()  # pin the pre-maintenance snapshot
    pinned_files = pinned.snapshot.file_ids()
    table.delete(Predicate("id", max_value=249))
    table.compact()
    for i in range(3):
        table.append(_table(1000 + i * 10, 10), options=_opts())

    svc = _service(table, snapshot_ttl_ms=None)
    svc.run_once()
    # the pinned snapshot's metadata and data files survived
    assert pinned.snapshot.snapshot_id in [
        s.snapshot_id for s in table.history()
    ]
    assert pinned_files <= set(table.store.list_data())
    got = np.asarray(pinned.read(["id"]).column("id"))
    assert np.array_equal(got, np.arange(500))

    pinned.release()
    svc.run_once()
    remaining = [s.snapshot_id for s in table.history()]
    assert pinned.snapshot.snapshot_id not in remaining
    assert not (pinned_files & set(table.store.list_data()))


def test_gc_grace_period_spares_young_orphans(table):
    """gc_grace_ms protects files staged by writers in other processes
    (invisible to this handle's in-flight set): young orphans survive."""
    for i in range(5):
        table.append(_table(i * 100, 100), options=_opts())
    orphan = table.store.new_file_id()
    table.store.create_data(orphan)  # as if staged elsewhere
    _service(table, gc_grace_ms=10 * 60 * 1000).run_once()
    assert orphan in table.store.list_data()
    _service(table).run_once()  # no grace: orphan is collected
    assert orphan not in table.store.list_data()


def test_gc_spares_files_staged_by_open_transactions(table):
    table.append(_table(0, 100), options=_opts())
    txn = table.transaction()
    txn.append(_table(100, 100), options=_opts())
    staged = set(txn._staged_ids)
    _service(table).run_once()
    assert staged <= set(table.store.list_data())
    txn.commit()
    assert table.current_snapshot().live_rows == 200


def test_maintenance_runs_on_directory_store(tmp_path):
    table = CatalogTable.create(
        DirectoryCatalogStore(str(tmp_path / "tbl"))
    )
    for i in range(4):
        table.append(_table(i * 250, 250), options=_opts())
    table.delete(Predicate("id", min_value=500, max_value=999))
    report = _service(table).run_once()
    assert report.jobs_run > 0
    assert report.bytes_reclaimed > 0
    got = np.sort(np.asarray(table.read(["id"]).column("id")))
    assert np.array_equal(got, np.arange(500))


def test_background_service_start_stop(table):
    for i in range(3):
        table.append(_table(i * 100, 100), options=_opts())
    svc = _service(table)
    svc.start(interval_s=0.01)
    try:
        deadline = 200
        while svc.cycles == 0 and deadline:
            deadline -= 1
            import time

            time.sleep(0.01)
    finally:
        svc.stop()
    assert svc.cycles > 0
    assert svc.last_report is not None
    # a second start after stop is allowed
    svc.start(interval_s=0.01)
    svc.stop()


def test_generalized_compact_and_merge_accept_file_storage(tmp_path):
    """Satellite: core compact()/merge() run on FileStorage backends."""
    from repro.core import BullionReader, BullionWriter, delete_rows
    from repro.core.compact import compact, merge
    from repro.iosim import FileStorage

    src = FileStorage(str(tmp_path / "src.bullion"))
    BullionWriter(src, options=_opts()).write(_table(0, 500))
    delete_rows(src, range(0, 100))
    dst = FileStorage(str(tmp_path / "dst.bullion"))
    report = compact(src, dst)
    assert report.rows_out == 400
    assert report.bytes_reclaimed > 0
    assert np.array_equal(
        np.asarray(BullionReader(dst).read_column("id")),
        np.arange(100, 500),
    )

    parts = []
    for i in range(2):
        part = FileStorage(str(tmp_path / f"part{i}.bullion"))
        BullionWriter(part, options=_opts()).write(_table(i * 50, 50))
        parts.append(part)
    merged = FileStorage(str(tmp_path / "merged.bullion"))
    merge(parts, merged)
    assert np.array_equal(
        np.asarray(BullionReader(merged).read_column("id")),
        np.arange(100),
    )
