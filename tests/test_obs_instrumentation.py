"""Instrumentation wiring tests: every layer publishes to the default
registry, and the global view reconciles *exactly* with per-call stats.

All assertions use snapshot/delta against the process-wide registry, so
they compose with whatever other tests ran in the same process.
"""

import json

import numpy as np
import pytest

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.catalog.maintenance import (
    MaintenanceJob,
    MaintenancePolicy,
    MaintenanceReport,
    MaintenanceService,
)
from repro.core import (
    BullionReader,
    BullionWriter,
    Table,
    WriterOptions,
)
from repro.core.reader import ScanStats
from repro.expr import col
from repro.iosim import InstrumentedStorage, SimulatedStorage
from repro.obs import metrics as obs_metrics, trace as obs_trace
from repro.obs.families import QUERY_MIRROR, SCAN_MIRROR
from repro.query import aggregate_reader

REG = obs_metrics.default_registry()


@pytest.fixture(autouse=True)
def _obs_state():
    """Metrics on, tracing off, restored afterwards."""
    was_enabled = obs_metrics.enabled()
    was_tracing = obs_trace.enabled()
    obs_metrics.set_enabled(True)
    obs_trace.disable()
    yield
    obs_metrics.set_enabled(was_enabled)
    if was_tracing:
        obs_trace.enable()
    else:
        obs_trace.disable()


def _write_file(storage, n_rows=400, rows_per_group=100):
    writer = BullionWriter(
        storage,
        options=WriterOptions(
            rows_per_page=rows_per_group // 2, rows_per_group=rows_per_group
        ),
    )
    writer.open()
    writer.write_batch(
        Table({
            "x": np.arange(n_rows, dtype=np.int64),
            "y": np.arange(n_rows, dtype=np.float64) * 0.5,
        })
    )
    writer.finish()
    return writer


# ---------------------------------------------------------------------------
# storage + reader + writer layers
# ---------------------------------------------------------------------------

class TestInstrumentedStorage:
    def test_write_and_read_ops_counted(self):
        st = InstrumentedStorage(SimulatedStorage("obs-st"))
        assert st.backend == "memory"
        before = REG.snapshot()
        st.append(b"a" * 100)
        st.append(b"b" * 28)
        st.pread(0, 64)
        st.pread(64, 64)
        st.pread(100, 28)
        st.sync()  # SimulatedStorage has no sync: must be a silent no-op
        d = REG.delta(before)
        assert d.value("storage_write_ops_total", backend="memory") == 2
        assert d.value("storage_write_bytes_total", backend="memory") == 128
        assert d.value("storage_read_ops_total", backend="memory") == 3
        assert d.value("storage_read_bytes_total", backend="memory") == 156
        assert d.value("storage_read_seconds", backend="memory") == 3
        assert d.value("storage_io_bytes", backend="memory", op="read") == 3
        assert d.value("storage_io_bytes", backend="memory", op="write") == 2
        assert d.value("storage_sync_ops_total", backend="memory") == 0

    def test_disabled_switch_stops_publication(self):
        st = InstrumentedStorage(SimulatedStorage("obs-off"))
        st.append(b"x" * 10)
        before = REG.snapshot()
        obs_metrics.set_enabled(False)
        st.pread(0, 10)
        st.append(b"y")
        obs_metrics.set_enabled(True)
        d = REG.delta(before)
        assert d.value("storage_read_ops_total", backend="memory") == 0
        assert d.value("storage_write_ops_total", backend="memory") == 0
        # the inner backend's own accounting is unaffected by the switch
        assert st.stats.reads == 1

    def test_full_file_roundtrip_through_wrapper(self):
        st = InstrumentedStorage(SimulatedStorage("obs-rt"))
        before = REG.snapshot()
        _write_file(st, n_rows=200, rows_per_group=100)
        total = sum(
            b.num_rows for b in BullionReader(st).scan(["x", "y"])
        )
        assert total == 200
        d = REG.delta(before)
        assert d.value("storage_write_ops_total", backend="memory") > 0
        assert d.value("storage_read_ops_total", backend="memory") > 0
        written = d.value("storage_write_bytes_total", backend="memory")
        assert written == st.size  # append-only file: bytes == size


class TestReaderInstrumentation:
    def test_cache_hits_misses_and_chunk_latency(self):
        storage = SimulatedStorage("obs-cache")
        _write_file(storage, n_rows=200, rows_per_group=100)
        reader = BullionReader(storage)
        before = REG.snapshot()
        reader.project(["x"])  # 2 groups -> 2 cold fetches
        reader.project(["x"])  # same chunks -> 2 cache hits
        d = REG.delta(before)
        assert d.value("scan_cache_misses_total") == 2
        assert d.value("scan_cache_hits_total") == 2
        assert d.value("scan_chunk_fetch_seconds", backend="memory") == 2

    def test_cache_evictions_counted(self):
        storage = SimulatedStorage("obs-evict")
        _write_file(storage, n_rows=400, rows_per_group=100)
        reader = BullionReader(storage, chunk_cache_size=2)
        before = REG.snapshot()
        reader.project(["x", "y"])  # 8 chunks through a 2-slot LRU
        d = REG.delta(before)
        assert d.value("scan_cache_evictions_total") == 6
        assert reader.chunk_cache.evictions == 6

    def test_reader_open_counted(self):
        storage = SimulatedStorage("obs-open")
        _write_file(storage, n_rows=100, rows_per_group=100)
        before = REG.snapshot()
        BullionReader(storage)
        BullionReader(storage)
        assert REG.delta(before).value("scan_files_opened_total") == 2


class TestWriterInstrumentation:
    def test_flush_and_encode_timings_and_counts(self):
        before = REG.snapshot()
        writer = _write_file(
            SimulatedStorage("obs-writer"), n_rows=300, rows_per_group=100
        )
        d = REG.delta(before)
        assert d.value("writer_groups_flushed_total") == 3
        assert (
            d.value("writer_pages_written_total") == writer.stats.pages_written
        )
        assert d.value("writer_flush_seconds") == 3  # one obs per flush
        assert d.value("writer_encode_seconds") == writer.stats.pages_written
        assert d.sum("writer_flush_seconds") >= d.sum("writer_encode_seconds")


# ---------------------------------------------------------------------------
# per-call stats mirrors
# ---------------------------------------------------------------------------

class TestStatsMirrors:
    def test_scan_stats_bump_publishes_once(self):
        before = REG.snapshot()
        stats = ScanStats()
        stats.bump(rows_scanned=10, groups_scanned=1)
        stats.bump(rows_scanned=5)
        d = REG.delta(before)
        assert stats.rows_scanned == 15
        assert d.value("scan_rows_scanned_total") == 15
        assert d.value("scan_groups_scanned_total") == 1

    def test_unmirrored_stats_stay_out_of_the_registry(self):
        before = REG.snapshot()
        stats = ScanStats.unmirrored()
        stats.bump(rows_scanned=1000, files_scanned=3)
        d = REG.delta(before)
        assert stats.rows_scanned == 1000
        assert d.value("scan_rows_scanned_total") == 0
        assert d.value("scan_files_scanned_total") == 0

    def test_disabled_switch_keeps_per_call_stats(self):
        before = REG.snapshot()
        obs_metrics.set_enabled(False)
        stats = ScanStats()
        stats.bump(rows_scanned=7)
        obs_metrics.set_enabled(True)
        assert stats.rows_scanned == 7
        assert REG.delta(before).value("scan_rows_scanned_total") == 0


# ---------------------------------------------------------------------------
# satellite fix: inner-scan pruning surfaced in QueryStats
# ---------------------------------------------------------------------------

class TestQueryStatsPruningRegression:
    """A metadata-eligible query used to drop zone-map-pruned groups
    from ``QueryStats`` entirely: ``TriState.NEVER`` groups were
    skipped with a bare ``continue``, so a query that pruned 3 of 4
    groups reported ``groups_total == 1`` and zero pruning."""

    def _reader(self):
        storage = SimulatedStorage("obs-prune")
        _write_file(storage, n_rows=400, rows_per_group=100)
        return BullionReader(storage)

    def test_decode_query_reports_pruned_groups(self):
        res = aggregate_reader(
            self._reader(), ["sum(y)"], where=col("x") >= 300
        )
        s = res.stats
        assert res.scalar("sum(y)") == pytest.approx(sum(0.5 * x for x in range(300, 400)))
        assert s.scan.groups_total == 4
        assert s.scan.groups_pruned == 3
        assert s.scan.rows_pruned == 300
        assert s.groups_decoded == 1 and s.files_decoded == 1
        # the cross-path invariant the engine documents
        assert s.scan.groups_total == (
            s.scan.groups_pruned + s.groups_meta_answered + s.scan.groups_scanned
        )

    def test_footer_answered_query_reports_pruned_groups(self):
        res = aggregate_reader(
            self._reader(), ["count"], where=col("x") >= 300
        )
        s = res.stats
        assert res.scalar("count") == 100
        assert s.files_footer_answered == 1
        assert s.scan.groups_total == 4
        assert s.scan.groups_pruned == 3
        assert s.scan.rows_pruned == 300
        assert s.groups_meta_answered == 1
        assert s.data_chunks_fetched == 0
        assert s.scan.groups_total == (
            s.scan.groups_pruned + s.groups_meta_answered + s.scan.groups_scanned
        )


# ---------------------------------------------------------------------------
# catalog layers: commits + maintenance
# ---------------------------------------------------------------------------

def _table(lo, n=300):
    return Table({
        "ts": np.arange(lo, lo + n, dtype=np.int64),
        "v": np.linspace(0.0, 1.0, n),
    })


_OPTS = WriterOptions(rows_per_page=50, rows_per_group=100)


class TestCommitInstrumentation:
    def test_clean_commit_counts_one_attempt(self):
        cat = CatalogTable.create(MemoryCatalogStore("obs-commit"))
        before = REG.snapshot()
        txn = cat.transaction()
        txn.append(_table(0), options=_OPTS)
        txn.commit()
        d = REG.delta(before)
        assert d.value("catalog_commit_attempts_total") == 1
        assert d.value("catalog_commit_conflicts_total") == 0
        assert d.value("catalog_commit_replays_total") == 0
        assert d.value("catalog_commits_total", operation="append") == 1
        assert d.value("catalog_commit_seconds") == 1

    def test_conflicted_commit_counts_replay(self):
        cat = CatalogTable.create(MemoryCatalogStore("obs-conflict"))
        t1 = cat.transaction()
        t2 = cat.transaction()  # same base snapshot: guaranteed race
        t1.append(_table(0), options=_OPTS)
        t2.append(_table(1000), options=_OPTS)
        t1.commit()
        before = REG.snapshot()
        t2.commit()
        d = REG.delta(before)
        assert d.value("catalog_commit_attempts_total") == 2
        assert d.value("catalog_commit_conflicts_total") == 1
        assert d.value("catalog_commit_replays_total") == 1
        assert d.value("catalog_commits_total", operation="append") == 1

    def test_abort_counted(self):
        cat = CatalogTable.create(MemoryCatalogStore("obs-abort"))
        txn = cat.transaction()
        txn.append(_table(0), options=_OPTS)
        before = REG.snapshot()
        txn.abort()
        assert REG.delta(before).value("catalog_commit_aborts_total") == 1


class TestMaintenanceInstrumentation:
    def test_cycle_jobs_and_reclamation_counted(self):
        cat = CatalogTable.create(MemoryCatalogStore("obs-maint"))
        for k in range(3):
            cat.append(_table(k * 300), options=_OPTS)
        service = MaintenanceService(
            cat, MaintenancePolicy(keep_snapshots=1)
        )
        before = REG.snapshot()
        report = service.run_once()
        d = REG.delta(before)
        assert d.value("maintenance_cycles_total") == 1
        assert d.value("maintenance_cycle_seconds") == 1
        assert report.jobs_run >= 2  # rollup + expire
        assert d.value("maintenance_jobs_run_total", kind="rollup") == 1
        assert d.value("maintenance_jobs_run_total", kind="expire") == 1
        assert (
            d.value("maintenance_snapshots_expired_total")
            == report.snapshots_expired
            > 0
        )
        # rollup merges three small files into one: reclamation is
        # strictly positive; the counter is clamped-at-zero per job, so
        # it can only exceed the raw report
        assert report.bytes_reclaimed > 0
        assert (
            d.value("maintenance_bytes_reclaimed_total")
            >= report.bytes_reclaimed
        )
        assert d.value("catalog_commits_total", operation="rollup") == 1
        # the merged-away originals stay referenced by the pre-rollup
        # HEAD for one cycle (the expire job was planned before the
        # rollup committed); the NEXT cycle expires it and GC deletes
        report2 = service.run_once()
        d2 = REG.delta(before)
        assert report2.data_files_deleted > 0
        assert (
            d2.value("maintenance_files_deleted_total")
            == report2.data_files_deleted
        )

    def test_pinned_snapshot_refusal_counted(self):
        """The plan() pass already sidesteps snapshots pinned at plan
        time, so the refusal counter covers the race where a reader
        pins between planning and execution — drive the executor with
        a stale plan to reproduce that window deterministically."""
        cat = CatalogTable.create(MemoryCatalogStore("obs-pin"))
        for k in range(2):
            cat.append(_table(k * 300), options=_OPTS)
        service = MaintenanceService(
            cat, MaintenancePolicy(keep_snapshots=1)
        )
        stale = MaintenanceJob(kind="expire", snapshot_ids=(1,))
        report = MaintenanceReport()
        with cat.pin(snapshot_id=1):
            before = REG.snapshot()
            service._run_expire(stale, report)
            d = REG.delta(before)
        assert report.skipped == ["expire: snapshot 1 is pinned"]
        assert report.snapshots_expired == 0
        assert (
            d.value("maintenance_gc_refusals_total", reason="pinned") == 1
        )
        # once unpinned, the same job goes through
        before = REG.snapshot()
        service._run_expire(stale, report)
        assert report.snapshots_expired == 1
        assert (
            REG.delta(before).value("maintenance_snapshots_expired_total")
            == 1
        )


# ---------------------------------------------------------------------------
# the acceptance flow: registry export reconciles with per-call stats
# ---------------------------------------------------------------------------

class TestEndToEndReconciliation:
    def test_flow_counters_reconcile_exactly(self, tmp_path):
        """Ingest -> commit -> pruned scan -> aggregate query ->
        maintenance cycle. The registry delta for every mirrored
        ``scan_*`` / ``query_*`` family must equal the summed per-call
        ScanStats/QueryStats — no silent counts, no double counts —
        and the traced flow exports a correctly nested Chrome trace."""
        tracer = obs_trace.default_tracer()
        tracer.reset()
        obs_trace.enable()
        before = REG.snapshot()

        # ingest + commit: three 300-row files, 100-row groups
        cat = CatalogTable.create(MemoryCatalogStore("obs-e2e"))
        for k in range(3):
            cat.append(_table(k * 300), options=_OPTS)

        # pruned scan: manifest stats drop two files unopened
        scan_stats = ScanStats()
        with cat.pin() as snap:
            rows = sum(
                b.num_rows
                for b in snap.scan(
                    ["ts", "v"], where=col("ts") >= 600, scan_stats=scan_stats
                )
            )
            assert rows == 300
            assert scan_stats.files_pruned == 2
            assert scan_stats.rows_pruned == 600

            # aggregate query: one MAYBE file decodes, two files pruned
            res = snap.query(
                ["count", "sum(v)"], where=col("ts") < 250, max_workers=1
            )
            assert res.scalar("count") == 250

        # reconcile BEFORE maintenance: the rollup job re-reads the
        # source files internally, so its scan counters (correctly) have
        # no caller-visible ScanStats to reconcile against
        delta = REG.delta(before)

        # maintenance: rollup the three small files, expire history
        service = MaintenanceService(cat, MaintenancePolicy(keep_snapshots=1))
        report = service.run_once()
        assert report.jobs_run >= 1

        obs_trace.disable()

        # exact reconciliation, field by field, for both mirrors
        q = res.stats
        for fld, metric in SCAN_MIRROR.field_to_metric.items():
            expected = getattr(scan_stats, fld) + getattr(q.scan, fld)
            assert delta.value(metric) == expected, (
                f"{metric}: registry {delta.value(metric)} != "
                f"per-call {expected}"
            )
        for fld, metric in QUERY_MIRROR.field_to_metric.items():
            expected = getattr(q, fld)
            assert delta.value(metric) == expected, (
                f"{metric}: registry {delta.value(metric)} != "
                f"per-call {expected}"
            )

        # the registry export speaks both formats
        text = REG.export_text()
        assert "# TYPE scan_rows_scanned_total counter" in text
        snap_path = tmp_path / "registry.json"
        REG.write_snapshot(snap_path)
        loaded = obs_metrics.load_snapshot(json.loads(snap_path.read_text()))
        assert loaded.value("scan_rows_scanned_total") == REG.snapshot().value(
            "scan_rows_scanned_total"
        )

        # Chrome trace: spans exported, and nesting is correct
        chrome_path = tmp_path / "flow.trace.json"
        tracer.export_chrome(chrome_path)
        payload = json.loads(chrome_path.read_text())
        events = payload["traceEvents"]
        names = {e["name"] for e in events}
        assert {
            "catalog.commit",
            "writer.flush_group",
            "scan.file",
            "query.snapshot",
            "query.file",
            "maintenance.cycle",
            "maintenance.job",
        } <= names
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)

        def contains(parent, child):
            return (
                parent["ts"] <= child["ts"] + 1e-6
                and child["ts"] + child["dur"]
                <= parent["ts"] + parent["dur"] + 1e-3
            )

        (qsnap,) = by_name["query.snapshot"]
        assert all(contains(qsnap, qf) for qf in by_name["query.file"])
        (cycle,) = by_name["maintenance.cycle"]
        assert all(contains(cycle, j) for j in by_name["maintenance.job"])
        # parent ids agree with interval containment (JSONL side)
        recs = {r.sid: r for r in tracer.records()}
        qsnap_rec = next(
            r for r in recs.values() if r.name == "query.snapshot"
        )
        for r in recs.values():
            if r.name == "query.file":
                assert r.parent == qsnap_rec.sid
