"""Chaos suite: disconnects, deadlines, faults, saturation, leaks.

Every failure mode the serving layer claims to contain, provoked for
real against a live server:

* a client that vanishes mid-scan-stream — the server notices between
  frames, abandons the stream, releases its pin lease and worker slot,
  and accounts the request as ``cancelled``;
* a deadline that expires while a chunk fetch is sleeping inside the
  modelled object store — surfaces as a typed ``deadline_exceeded``
  frame as soon as the fetch returns;
* an injected storage fault (``ObjectStorageError`` ⊂ ``OSError``) —
  a typed ``io_error`` response, the connection and server survive;
* a saturated worker pool — typed ``server_busy`` rejections, never
  unbounded queueing;
* and after all of it: file descriptors and threads return to
  baseline, and the request/response/connection counters reconcile
  exactly.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.catalog import CatalogTable, DirectoryCatalogStore, MemoryCatalogStore
from repro.core.table import Table
from repro.iosim.storage import ObjectStorage, ObjectStorageError, SeekModel
from repro.obs.metrics import default_registry
from repro.server import (
    BullionServer,
    DeadlineExceeded,
    IOFault,
    ServerBusy,
    ServerClient,
    TableService,
)
#: fast model so un-jittered requests don't slow the suite
_FAST_MODEL = SeekModel(
    seek_latency_s=0.0, bandwidth_bytes_per_s=1e9, request_latency_s=0.0
)


class ChaosCatalogStore(MemoryCatalogStore):
    """Memory store whose reads go through a faultable object store."""

    def __init__(self) -> None:
        super().__init__("chaos")
        self.get_jitter_s = 0.0
        self.fail_gets = False

    def open_data(self, file_id: str):
        inner = super().open_data(file_id)
        return ObjectStorage(
            inner,
            model=_FAST_MODEL,
            jitter_fn=lambda op, off, n: self.get_jitter_s,
            fault_fn=self._fault,
            sleep=True,
        )

    def _fault(self, op: str, offset: int, nbytes: int) -> None:
        if self.fail_gets and op == "GET":
            raise ObjectStorageError("injected storage fault")


def _build(store, n_files=2, rows=4000):
    table = CatalogTable.create(store)
    rng = np.random.default_rng(5)
    for k in range(n_files):
        lo = k * rows
        table.append(Table({
            "ts": np.arange(lo, lo + rows, dtype=np.int64),
            "v": rng.normal(size=rows),
        }))
    return table


def _wait_for(predicate, timeout=20.0, what="condition"):
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


def _value(name: str, **labels) -> float:
    return default_registry().snapshot().value(name, **labels)


# ---------------------------------------------------------------------------
# client disconnect mid-stream
# ---------------------------------------------------------------------------

def test_client_disconnect_mid_stream_cancels_and_releases():
    store = ChaosCatalogStore()
    # enough rows that the response stream cannot fit in socket
    # buffers: the server must still be producing when the client dies
    table = _build(store, rows=20_000)
    service = TableService(
        {"events": table}, workers=1, max_queue=0, queue_timeout_s=0.2
    )
    server = BullionServer(service)
    try:
        base_cancelled = _value("server_requests_cancelled_total")
        victim = ServerClient(server.host, server.port, timeout=30.0)
        victim._send({
            "op": "scan",
            "table": "events",
            "columns": ["ts", "v"],
            "batch_size": 16,  # hundreds of frames: can't all buffer
        })
        victim._read()  # header
        victim._read()  # one batch arrives fine
        # vanish without a goodbye (RST, not FIN, via SO_LINGER 0)
        victim.sock.setsockopt(
            socket.SOL_SOCKET,
            socket.SO_LINGER,
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
        victim.close()
        _wait_for(
            lambda: _value("server_requests_cancelled_total")
            > base_cancelled,
            what="the server to notice the disconnect",
        )
        # the single worker slot came back: a fresh request succeeds
        with ServerClient(server.host, server.port, timeout=30.0) as c:
            reply = c.query("events", ["count"], deadline_ms=60_000)
            assert reply.rows[0]["count(*)"] == 40_000
        assert _value("server_inflight_requests_current") == 0
    finally:
        server.close()


# ---------------------------------------------------------------------------
# deadline expiry inside a chunk fetch
# ---------------------------------------------------------------------------

def test_deadline_expires_inside_slow_chunk_fetch():
    store = ChaosCatalogStore()
    table = _build(store)
    service = TableService({"events": table}, workers=2, max_queue=2)
    server = BullionServer(service)
    try:
        with ServerClient(server.host, server.port, timeout=60.0) as c:
            # warm pass opens the footers while storage is fast
            c.query("events", ["count"], deadline_ms=60_000)
            base = _value("server_deadline_expirations_total")
            store.get_jitter_s = 0.2  # every GET now sleeps 200ms
            with pytest.raises(DeadlineExceeded):
                c.scan(
                    "events",
                    ["ts", "v"],
                    batch_size=64,
                    deadline_ms=100,
                )
            assert _value("server_deadline_expirations_total") > base
            store.get_jitter_s = 0.0
            # the connection survived the mid-stream error frame
            assert c.ping()["ok"] is True
    finally:
        server.close()


# ---------------------------------------------------------------------------
# injected storage faults
# ---------------------------------------------------------------------------

def test_storage_fault_is_a_typed_io_error_and_server_survives():
    store = ChaosCatalogStore()
    table = _build(store)
    service = TableService({"events": table}, workers=2, max_queue=2)
    server = BullionServer(service)
    try:
        with ServerClient(server.host, server.port, timeout=60.0) as c:
            base = _value(
                "server_request_errors_total", code="io_error"
            )
            store.fail_gets = True
            with pytest.raises(IOFault):
                c.scan("events", ["ts"], deadline_ms=60_000)
            assert (
                _value("server_request_errors_total", code="io_error")
                > base
            )
            store.fail_gets = False
            # same connection, same server: next request is fine
            reply = c.query("events", ["count"], deadline_ms=60_000)
            assert reply.rows[0]["count(*)"] == 8000
    finally:
        server.close()


# ---------------------------------------------------------------------------
# worker-pool saturation
# ---------------------------------------------------------------------------

def test_saturation_yields_typed_server_busy():
    store = ChaosCatalogStore()
    # big enough that the held scan outlives the saturation probe even
    # if the kernel buffers generously
    table = _build(store, rows=20_000)
    service = TableService(
        {"events": table},
        workers=1,
        max_queue=0,
        queue_timeout_s=0.2,
        default_deadline_s=60.0,
    )
    server = BullionServer(service)
    try:
        store.get_jitter_s = 0.05  # keep the one worker busy a while
        slow = ServerClient(server.host, server.port, timeout=60.0)
        slow._send({
            "op": "scan",
            "table": "events",
            "columns": ["ts", "v"],
            "batch_size": 32,
        })
        slow._read()  # the stream started: the worker slot is held
        _wait_for(
            lambda: _value("server_inflight_requests_current") >= 1,
            what="the slow scan to occupy the worker",
        )
        base = _value(
            "server_requests_rejected_total", reason="queue_full"
        )
        with ServerClient(server.host, server.port, timeout=30.0) as c:
            with pytest.raises(ServerBusy):
                c.query("events", ["count"])
            # the rejection is observable and typed
            assert (
                _value(
                    "server_requests_rejected_total",
                    reason="queue_full",
                )
                > base
            )
            # non-admitted ops still work while saturated
            assert c.ping()["ok"] is True
        store.get_jitter_s = 0.0
        slow.close()
    finally:
        server.close()


# ---------------------------------------------------------------------------
# leak + reconciliation sweep
# ---------------------------------------------------------------------------

def _fd_count() -> int:
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="needs /proc"
)
def test_no_leaked_fds_or_threads_and_counters_reconcile(tmp_path):
    store = DirectoryCatalogStore(str(tmp_path / "tbl"))
    table = _build(store, n_files=2, rows=500)
    threads_before = threading.active_count()
    fds_before = _fd_count()
    reg = default_registry()
    base = reg.snapshot()

    service = TableService(
        {"events": table}, workers=2, max_queue=2, queue_timeout_s=0.2
    )
    server = BullionServer(service)
    # a mixed workload: successes, typed errors, one rude disconnect
    with ServerClient(server.host, server.port, timeout=30.0) as c:
        c.query("events", ["count", "sum(v)"])
        c.scan("events", ["ts"], where="ts < 200", batch_size=64)
        with pytest.raises(Exception):
            c.query("nope", ["count"])
        with pytest.raises(Exception):
            c.query("events", ["frobnicate(v)"])
    rude = ServerClient(server.host, server.port, timeout=30.0)
    rude._send({
        "op": "scan",
        "table": "events",
        "columns": ["ts", "v"],
        "batch_size": 8,
    })
    rude._read()
    rude.sock.setsockopt(
        socket.SOL_SOCKET,
        socket.SO_LINGER,
        b"\x01\x00\x00\x00\x00\x00\x00\x00",
    )
    rude.close()
    _wait_for(
        lambda: reg.delta(base).value("server_requests_cancelled_total")
        >= 1,
        what="the cancelled request to be accounted",
    )
    server.close()

    # -- leaks ----------------------------------------------------------
    _wait_for(
        lambda: threading.active_count() == threads_before,
        what="server threads to exit",
    )
    assert _fd_count() == fds_before, "file descriptors leaked"

    # -- exact reconciliation ------------------------------------------
    delta = reg.delta(base)
    ops = ("ping", "health", "metrics", "tables", "snapshot", "scan",
           "query", "unknown", "http")
    requests = sum(
        delta.value("server_requests_total", op=op) for op in ops
    )
    responses = sum(
        delta.value("server_responses_total", outcome=o)
        for o in ("ok", "error", "rejected", "cancelled")
    )
    assert requests == responses > 0
    assert delta.value(
        "server_connections_opened_total"
    ) == delta.value("server_connections_closed_total")
    assert delta.value("server_connections_current") == 0
    assert delta.value("server_inflight_requests_current") == 0
    assert delta.value("server_queued_requests_current") == 0
