"""Metric naming-convention lint (the CI guard for new instrumentation).

Every family in the canonical inventory — and every registration
literal anywhere under ``src/`` — must follow the convention documented
in ARCHITECTURE.md: ``<subsystem>_<noun>_<unit>``, lowercase
snake_case, at least three segments, ending in a recognised unit
suffix. The registry enforces this at runtime; this test enforces it
at review time, including registrations on code paths tests never hit.
"""

import os
import re

from repro.obs.families import STANDARD_FAMILIES
from repro.obs.metrics import UNIT_SUFFIXES, validate_metric_name

SRC_ROOT = os.path.join(os.path.dirname(__file__), "..", "src", "repro")

_REGISTRATION_RE = re.compile(
    r"\.\s*(?:counter|gauge|histogram)\(\s*[\"']([^\"']+)[\"']"
)


def _iter_source():
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for fn in filenames:
            if fn.endswith(".py"):
                path = os.path.join(dirpath, fn)
                with open(path, "r", encoding="utf-8") as fh:
                    yield path, fh.read()


def test_standard_families_exist_and_validate():
    assert len(STANDARD_FAMILIES) >= 30, STANDARD_FAMILIES
    for name in STANDARD_FAMILIES:
        validate_metric_name(name)


def test_every_registration_literal_in_src_validates():
    found = []
    for path, text in _iter_source():
        for m in _REGISTRATION_RE.finditer(text):
            found.append((path, m.group(1)))
    # the canonical families module registers everything, so the sweep
    # must at least see those literals
    assert len(found) >= len(STANDARD_FAMILIES) // 2, found
    bad = []
    for path, name in found:
        try:
            validate_metric_name(name)
        except ValueError as exc:
            bad.append(f"{path}: {exc}")
    assert not bad, "\n".join(bad)


def test_unit_suffix_semantics():
    """Families' unit suffixes match their instrument kind: counters
    end in countable units, histograms in measurable ones."""
    from repro.obs.metrics import default_registry

    for name in STANDARD_FAMILIES:
        fam = default_registry().get(name)
        assert fam is not None, name
        unit = name.rsplit("_", 1)[1]
        assert unit in UNIT_SUFFIXES
        if fam.kind == "counter":
            assert unit == "total", (
                f"counter {name} should end in _total, got _{unit}"
            )
        if fam.kind == "histogram":
            assert unit in ("seconds", "bytes"), (
                f"histogram {name} should measure seconds or bytes"
            )
