"""Differential harness: every query path vs brute-force numpy.

The aggregation engine has three answer paths (manifest-only,
footer-stats-only, decode) and picks per file and per row group. The
contract is that the choice is invisible: for any dataset and any
plan, ``query(...)`` — with metadata fast paths on *and* forced off —
returns exactly what brute-force numpy computes over the fully
materialized (widened, deletion-filtered) table.

These tests throw randomized datasets at that contract: every
filterable dtype, NaN/±inf floats, int64 values at the 2**53±1
float64-precision boundary, quantized FP16/BF16 columns, deletion
vectors, and multi-file catalogs — seeded and reproducible. Counts,
extrema and integer sums must match bit for bit; float sums/means are
compared to 1e-9 relative tolerance (the engine's deterministic
merge order differs from numpy's pairwise whole-array sum).
"""

import math

import numpy as np
import pytest

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core import (
    BullionReader,
    BullionWriter,
    Table,
    WriterOptions,
    delete_rows,
)
from repro.expr import all_of, any_of, col, evaluate
from repro.query import QueryPlan
from repro.quantization import FloatFormat, QuantizationPolicy

# ---------------------------------------------------------------------------
# dataset generators
# ---------------------------------------------------------------------------

GROUPABLE = ("region", "flag", "tag")
NUMERIC = ("i64", "i32", "f64", "f32", "flag", "region")


def _random_table(rng, n, quantized=False):
    """Every filterable dtype, plus NaN/inf and 2**53-boundary ints."""
    i64 = rng.integers(-(10**9), 10**9, n).astype(np.int64)
    big_at = rng.integers(0, n, max(1, n // 40))
    i64[big_at] = 2**53 + rng.integers(-3, 4, len(big_at))
    f64 = rng.normal(size=n)
    f64[rng.random(n) < 0.05] = np.nan
    f64[rng.random(n) < 0.02] = np.inf
    f64[rng.random(n) < 0.02] = -np.inf
    cols = {
        "i64": i64,
        "i32": rng.integers(-50, 50, n).astype(np.int32),
        "f64": f64,
        "f32": rng.normal(size=n).astype(np.float32),
        "flag": rng.random(n) < 0.3,
        "region": rng.integers(0, 5, n).astype(np.int32),
        "tag": [f"t{int(v)}".encode() for v in rng.integers(0, 4, n)],
    }
    if quantized:
        cols["q16"] = rng.normal(size=n).astype(np.float32)
        cols["qb"] = (rng.normal(size=n) * 4).astype(np.float32)
    return Table(cols)


def _quant_policy():
    return QuantizationPolicy(
        assignments={"q16": FloatFormat.FP16, "qb": FloatFormat.BF16},
        default=FloatFormat.FP32,
    )


def _random_leaf(rng, table):
    name = rng.choice(["i64", "i32", "f64", "f32", "flag", "tag", "region"])
    values = table.columns[name]
    if name == "tag":
        choices = [b"t0", b"t2", b"zzz"]
        return col(name) == choices[rng.integers(0, len(choices))]
    if name == "flag":
        return col(name) == bool(rng.random() < 0.5)
    arr = np.asarray(values, dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    pivot = float(rng.choice(finite)) if len(finite) else 0.0
    if name.startswith(("i", "r")) and rng.random() < 0.7:
        pivot = int(pivot)
    op = rng.choice(["==", "!=", "<", "<=", ">", ">="])
    return getattr(col(name), {
        "==": "__eq__", "!=": "__ne__", "<": "__lt__",
        "<=": "__le__", ">": "__gt__", ">=": "__ge__",
    }[op])(pivot)


def _random_expr(rng, table, depth=2):
    if depth == 0 or rng.random() < 0.45:
        return _random_leaf(rng, table)
    combine = all_of if rng.random() < 0.6 else any_of
    return combine(
        _random_expr(rng, table, depth - 1),
        _random_expr(rng, table, depth - 1),
    )


def _random_plan(rng, table, quantized=False):
    numeric = list(NUMERIC) + (["q16", "qb"] if quantized else [])
    fns = ["count(*)", "count", "sum", "min", "max", "mean"]
    specs = set()
    for _ in range(int(rng.integers(1, 5))):
        fn = fns[rng.integers(0, len(fns))]
        if fn == "count(*)":
            specs.add("count")
        else:
            c = numeric[rng.integers(0, len(numeric))]
            specs.add(f"{fn}({c})" if fn != "count" or rng.random() < 0.8
                      else "count")
    specs.add("count")  # every plan checks row counting
    where = _random_expr(rng, table) if rng.random() < 0.6 else None
    group_by = None
    if rng.random() < 0.4:
        k = int(rng.integers(1, 3))
        group_by = list(rng.choice(GROUPABLE, size=k, replace=False))
    return QueryPlan.build(sorted(specs), where=where, group_by=group_by)


# ---------------------------------------------------------------------------
# brute-force oracle
# ---------------------------------------------------------------------------

def _pylist(values):
    if isinstance(values, np.ndarray):
        if values.dtype == np.bool_:
            return [bool(v) for v in values]
        if np.issubdtype(values.dtype, np.integer):
            return [int(v) for v in values]
        return [float(v) for v in values]
    return [bytes(v) for v in values]


def _wrap_i64(total: int) -> int:
    return ((total + 2**63) % 2**64) - 2**63


def _brute_one_group(plan, cols, idx):
    """Aggregate one group (row indices ``idx``) with plain numpy."""
    row = {}
    for spec in plan.aggregates:
        if spec.column is None:
            row[spec.name] = len(idx)
            continue
        values = cols[spec.column]
        if isinstance(values, np.ndarray):
            v = values[idx]
        else:
            v = [values[i] for i in idx]
        if not isinstance(values, np.ndarray):  # bytes: count only
            row[spec.name] = len(v)
            continue
        if v.dtype == np.bool_ or np.issubdtype(v.dtype, np.integer):
            v = v.astype(np.int64)
            exact = sum(int(x) for x in v)
            out = {
                "count": len(v),
                "sum": _wrap_i64(exact),
                "min": int(v.min()) if len(v) else None,
                "max": int(v.max()) if len(v) else None,
                "mean": exact / len(v) if len(v) else None,
            }
        else:
            v = v.astype(np.float64)
            v = v[~np.isnan(v)]
            with np.errstate(invalid="ignore"):  # inf + -inf
                total = float(np.sum(v)) if len(v) else 0.0
            out = {
                "count": len(v),
                "sum": total,
                "min": float(np.min(v)) if len(v) else None,
                "max": float(np.max(v)) if len(v) else None,
                "mean": total / len(v) if len(v) else None,
            }
        row[spec.name] = out[spec.fn]
    return row


def _brute_aggregate(plan, cols, n_rows):
    """The oracle: materialized widened columns -> expected rows."""
    idx = np.arange(n_rows)
    if plan.where is not None:
        mask = evaluate(plan.where, cols)
        idx = idx[mask]
    if not plan.group_by:
        return [_brute_one_group(plan, cols, idx)]
    key_lists = [_pylist(cols[k]) for k in plan.group_by]
    groups: dict = {}
    for i in idx:
        key = tuple(kl[i] for kl in key_lists)
        groups.setdefault(key, []).append(i)
    rows = []
    for key in sorted(groups):
        row = dict(zip(plan.group_by, key))
        row.update(
            _brute_one_group(plan, cols, np.asarray(groups[key]))
        )
        rows.append(row)
    return rows


def _values_close(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) or isinstance(b, float):
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return math.isnan(fa) and math.isnan(fb)
        if math.isinf(fa) or math.isinf(fb):
            return fa == fb
        return math.isclose(fa, fb, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


_EXACT_FNS = ("count", "min", "max")


def _assert_rows_match(plan, got, expected, context=""):
    assert len(got) == len(expected), (
        f"{context}: {len(got)} result rows vs {len(expected)} expected "
        f"for {plan}"
    )
    for grow, erow in zip(got, expected):
        assert set(grow) == set(erow)
        for name in erow:
            gv, ev = grow[name], erow[name]
            spec_fn = name.split("(")[0]
            if name in plan.group_by or spec_fn in _EXACT_FNS or (
                isinstance(ev, int) and isinstance(gv, int)
            ):
                assert gv == ev, (
                    f"{context}: {name} = {gv!r}, expected {ev!r} "
                    f"(plan {plan}, group {grow})"
                )
            else:
                assert _values_close(gv, ev), (
                    f"{context}: {name} = {gv!r}, expected {ev!r} "
                    f"(plan {plan}, group {grow})"
                )


# ---------------------------------------------------------------------------
# single-file differential
# ---------------------------------------------------------------------------

def _check_reader(reader, table, plan, context):
    names = list(table.columns)
    widened = reader.project(names, widen_quantized=True)
    expected = _brute_aggregate(plan, widened.columns, widened.num_rows)
    for use_metadata in (True, False):
        res = reader.aggregate(plan, use_metadata=use_metadata)
        _assert_rows_match(
            plan, res.rows, expected,
            f"{context} metadata={use_metadata}",
        )


class TestFileDifferential:
    """~160 randomized (plan, path) cases over single files."""

    @pytest.mark.parametrize("seed", range(10))
    def test_randomized(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(200, 800))
        quantized = bool(seed % 2)
        table = _random_table(rng, n, quantized=quantized)
        from repro.iosim import SimulatedStorage

        dev = SimulatedStorage()
        options = WriterOptions(
            rows_per_page=25,
            rows_per_group=int(rng.integers(2, 6)) * 25,
            quantization=_quant_policy() if quantized else None,
        )
        BullionWriter(dev, options=options).write(table)
        if rng.random() < 0.5:
            doomed = np.flatnonzero(rng.random(n) < 0.15)
            if len(doomed):
                delete_rows(dev, doomed)
        reader = BullionReader(dev)
        for case in range(8):
            plan = _random_plan(rng, table, quantized=quantized)
            _check_reader(reader, table, plan, f"seed={seed} case={case}")


# ---------------------------------------------------------------------------
# multi-file catalog differential
# ---------------------------------------------------------------------------

def _check_snapshot(pinned, names, plan, context):
    widened = pinned.read(names, widen_quantized=True)
    expected = _brute_aggregate(plan, widened.columns, widened.num_rows)
    for use_metadata in (True, False):
        for workers in (1, 4):
            res = pinned.query(
                plan, use_metadata=use_metadata, max_workers=workers
            )
            _assert_rows_match(
                plan, res.rows, expected,
                f"{context} metadata={use_metadata} workers={workers}",
            )


class TestCatalogDifferential:
    """~140 randomized (plan, path, width) cases over catalogs."""

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized(self, seed):
        rng = np.random.default_rng(5000 + seed)
        store = MemoryCatalogStore()
        cat = CatalogTable.create(store)
        quantized = bool(seed % 2)
        tables = []
        for _shard in range(int(rng.integers(2, 5))):
            n = int(rng.integers(150, 400))
            t = _random_table(rng, n, quantized=quantized)
            tables.append(t)
            cat.append(
                t,
                options=WriterOptions(
                    rows_per_page=25,
                    rows_per_group=int(rng.integers(2, 5)) * 25,
                    quantization=_quant_policy() if quantized else None,
                ),
            )
        if rng.random() < 0.5:
            # live deletion vectors in some committed files
            cat.delete(col("region") == int(rng.integers(0, 5)))
        names = list(tables[0].columns)
        with cat.pin() as pinned:
            for case in range(6):
                plan = _random_plan(rng, tables[0], quantized=quantized)
                _check_snapshot(
                    pinned, names, plan, f"seed={seed} case={case}"
                )


# ---------------------------------------------------------------------------
# directed edges the random sweep could miss
# ---------------------------------------------------------------------------

class TestDirectedEdges:
    def _reader_for(self, table, **writer_kwargs):
        from repro.iosim import SimulatedStorage

        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=10, rows_per_group=20, **writer_kwargs
            ),
        ).write(table)
        return BullionReader(dev)

    def test_int64_precision_boundary(self):
        """min/max at 2**53±1 are exact — the metadata path must
        refuse the rounded stats and decode instead of answering
        2**53 for 2**53 + 1."""
        v = np.array(
            [2**53 - 1, 2**53, 2**53 + 1, -(2**53) - 1, 7],
            dtype=np.int64,
        )
        reader = self._reader_for(Table({"v": v}))
        for use_metadata in (True, False):
            res = reader.aggregate(
                ["min(v)", "max(v)", "sum(v)"], use_metadata=use_metadata
            )
            assert res.rows[0]["min(v)"] == -(2**53) - 1
            assert res.rows[0]["max(v)"] == 2**53 + 1
            assert res.rows[0]["sum(v)"] == int(np.sum(v))

    def test_small_int_min_max_is_metadata_answered(self):
        v = np.arange(100, dtype=np.int64)
        reader = self._reader_for(Table({"v": v}))
        res = reader.aggregate(["min(v)", "max(v)", "count"])
        assert res.rows[0] == {"min(v)": 0, "max(v)": 99, "count(*)": 100}
        assert res.stats.data_chunks_fetched == 0

    def test_all_nan_column(self):
        t = Table({
            "k": np.arange(40, dtype=np.int64),
            "f": np.full(40, np.nan),
        })
        reader = self._reader_for(t)
        for use_metadata in (True, False):
            res = reader.aggregate(
                ["count", "count(f)", "sum(f)", "min(f)", "mean(f)"],
                use_metadata=use_metadata,
            )
            row = res.rows[0]
            assert row["count(*)"] == 40
            assert row["count(f)"] == 0
            assert row["sum(f)"] == 0.0
            assert row["min(f)"] is None
            assert row["mean(f)"] is None

    def test_infinities_survive_min_max(self):
        f = np.array([1.5, np.inf, -np.inf, np.nan, 2.0])
        reader = self._reader_for(Table({"f": f}))
        for use_metadata in (True, False):
            res = reader.aggregate(
                ["min(f)", "max(f)", "count(f)"], use_metadata=use_metadata
            )
            row = res.rows[0]
            assert row["min(f)"] == -np.inf
            assert row["max(f)"] == np.inf
            assert row["count(f)"] == 4

    def test_int64_sum_wraparound_matches_numpy(self):
        v = np.array([2**62, 2**62, 2**62], dtype=np.int64)
        reader = self._reader_for(Table({"v": v}))
        res = reader.aggregate(["sum(v)"], use_metadata=False)
        with np.errstate(over="ignore"):
            assert res.rows[0]["sum(v)"] == int(np.sum(v))

    def test_zero_match_filter(self):
        t = Table({
            "k": np.arange(60, dtype=np.int64),
            "f": np.linspace(0, 1, 60),
        })
        reader = self._reader_for(t)
        for use_metadata in (True, False):
            res = reader.aggregate(
                ["count", "count(f)", "sum(f)", "min(f)", "max(k)",
                 "mean(f)"],
                where=col("k") > 1000,
                use_metadata=use_metadata,
            )
            row = res.rows[0]
            assert row["count(*)"] == 0 and row["count(f)"] == 0
            assert row["sum(f)"] == 0.0
            assert row["min(f)"] is None and row["max(k)"] is None
            assert row["mean(f)"] is None

    def test_empty_catalog(self):
        cat = CatalogTable.create(MemoryCatalogStore())
        res = cat.query(["count", "min(x)", "sum(x)"])
        assert res.rows == [
            {"count(*)": 0, "min(x)": None, "sum(x)": 0}
        ]
        grouped = cat.query(["count"], group_by=["g"])
        assert grouped.rows == []

    def test_group_spanning_files_and_groups(self):
        """One group key spread over every file and row group merges
        into a single exact output row."""
        store = MemoryCatalogStore()
        cat = CatalogTable.create(store)
        total = 0
        for k in range(3):
            n = 90
            cat.append(
                Table({
                    "g": np.tile(
                        np.arange(3, dtype=np.int32), n // 3
                    ),
                    "v": np.arange(n, dtype=np.int64) + 100 * k,
                }),
                options=WriterOptions(rows_per_page=10, rows_per_group=30),
            )
            total += n
        with cat.pin() as snap:
            names = ["g", "v"]
            plan = QueryPlan.build(
                ["count", "sum(v)", "min(v)", "max(v)"], group_by=["g"]
            )
            _check_snapshot(snap, names, plan, "span")
            res = snap.query(plan)
            assert [r["g"] for r in res.rows] == [0, 1, 2]
            assert sum(r["count(*)"] for r in res.rows) == total
