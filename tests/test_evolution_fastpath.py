"""Fast-path isolation under schema evolution.

The per-file resolver must not tax tables that never needed it: a
homogeneous snapshot (no evolution, or every file already at the
current schema) keeps the zero-file-open guarantee of
``test_query_fastpath``. And when a snapshot *is* heterogeneous, a
file missing the aggregated column degrades gracefully — typed fills
and a decode fallback, never a crash — while files that do carry the
column stay on their metadata paths.
"""

import numpy as np

from repro.catalog import AddColumn, CatalogTable, RenameColumn
from repro.core import Table, WriterOptions
from repro.expr import col
from test_query_fastpath import CountingCatalogStore

OPTS = WriterOptions(rows_per_page=25, rows_per_group=50)


def _evolved_catalog():
    """File A at schema 0 (ts, v); file B at schema 1 after
    ``AddColumn(clicks:int64) + AddColumn(score:double)``."""
    store = CountingCatalogStore()
    cat = CatalogTable.create(store)
    cat.append(
        Table({
            "ts": np.arange(100, dtype=np.int64),
            "v": np.linspace(0.0, 1.0, 100),
        }),
        options=OPTS,
    )
    cat.evolve(AddColumn("clicks", "int64"), AddColumn("score", "double"))
    cat.append(
        Table({
            "ts": np.arange(100, 200, dtype=np.int64),
            "v": np.linspace(1.0, 2.0, 100),
            "clicks": np.arange(100, dtype=np.int64) + 5,
            "score": np.linspace(10.0, 20.0, 100),
        }),
        options=OPTS,
    )
    return store, cat


class TestHomogeneousStaysZeroOpen:
    def test_never_evolved_table(self):
        """Legacy tables route around the resolver entirely."""
        store = CountingCatalogStore()
        cat = CatalogTable.create(store)
        for k in range(3):
            cat.append(
                Table({
                    "ts": np.arange(k * 100, (k + 1) * 100, dtype=np.int64),
                    "v": np.linspace(0.0, 1.0, 100),
                }),
                options=OPTS,
            )
        store.begin_run()
        with cat.pin() as snap:
            assert snap.current_schema() is None
            res = snap.query(["count", "min(ts)", "max(ts)", "min(v)"])
        assert store.opened == [], "manifest-only query opened a file"
        assert res.rows[0]["count(*)"] == 300
        assert res.stats.files_meta_answered == 3

    def test_evolved_but_all_files_current(self):
        """Once every file is at the current schema, resolution is the
        identity again: metadata fast paths reopen, zero file opens —
        new columns included."""
        store, cat = _evolved_catalog()
        # drop file A (schema 0); only the schema-1 file remains
        cat.delete(col("ts") < 100)
        cat.compact()
        store.begin_run()
        with cat.pin() as snap:
            assert snap.current_schema() is not None
            assert all(
                f.schema_id == snap.snapshot.current_schema_id
                for f in snap.snapshot.files
            )
            res = snap.query(
                ["count", "min(ts)", "min(clicks)", "max(score)"]
            )
        assert store.opened == [], "homogeneous evolved snapshot opened a file"
        row = res.rows[0]
        assert row["count(*)"] == 100
        assert row["min(clicks)"] == 5
        assert row["max(score)"] == 20.0

    def test_rename_only_evolution_stays_zero_open(self):
        """A rename changes no bytes; stats resolve through the log and
        the manifest still answers alone."""
        store, cat = _evolved_catalog()
        cat.evolve(RenameColumn("v", "value"))
        store.begin_run()
        with cat.pin() as snap:
            res = snap.query(["count", "min(value)", "max(value)"])
        assert store.opened == [], "rename forced a file open"
        assert res.rows[0]["min(value)"] == 0.0
        assert res.rows[0]["max(value)"] == 2.0


class TestHeterogeneousGracefulFallback:
    def test_plain_count_stays_manifest_only(self):
        """Row counts don't care about layout: zero opens even when the
        snapshot mixes schemas."""
        store, cat = _evolved_catalog()
        store.begin_run()
        with cat.pin() as snap:
            res = snap.query(["count"])
        assert store.opened == []
        assert res.rows[0]["count(*)"] == 200

    def test_min_on_missing_int_column_decodes_only_that_file(self):
        """min(clicks): file B answers from metadata; file A has no
        stats for ``clicks`` so only it opens — and its int fills (0)
        participate, matching the documented int-fill semantics."""
        store, cat = _evolved_catalog()
        store.begin_run()
        with cat.pin() as snap:
            res = snap.query(["min(clicks)", "max(clicks)"])
        opened_once = {s.name for s, _base in store.opened}
        assert len(opened_once) == 1, (
            f"expected exactly the schema-0 file to open, got {opened_once}"
        )
        assert res.rows[0]["min(clicks)"] == 0  # fill value from file A
        assert res.rows[0]["max(clicks)"] == 104
        assert res.stats.files_meta_answered == 1

    def test_sum_on_missing_float_column_skips_nan_fills(self):
        """sum/mean(score): file A contributes NaN fills, which the
        engine's NaN-skip semantics exclude — the answer equals file
        B's alone, with no crash on the schema-0 file."""
        store, cat = _evolved_catalog()
        with cat.pin() as snap:
            res = snap.query(["sum(score)", "count(score)", "mean(score)"])
        row = res.rows[0]
        assert row["count(score)"] == 100  # NaN fills never count
        assert row["sum(score)"] == np.sum(np.linspace(10.0, 20.0, 100))
        assert row["mean(score)"] == row["sum(score)"] / 100

    def test_filter_on_missing_column_prunes_conservatively(self):
        """A predicate on a column file A lacks: manifest stats are
        absent there, so the classifier must say MAYBE (never a wrong
        prune) and the decode path evaluates the fills."""
        store, cat = _evolved_catalog()
        with cat.pin() as snap:
            res = snap.query(["count"], where=col("clicks") >= 5)
            forced = snap.query(
                ["count"], where=col("clicks") >= 5, use_metadata=False
            )
        # file A fills clicks=0 (all rows fail); file B has clicks>=5
        assert res.rows[0]["count(*)"] == 100
        assert forced.rows[0]["count(*)"] == 100

    def test_count_bytes_column_absent_from_old_file(self):
        """count(tag) where the old file predates the bytes column:
        b"" fills count like any string value — graceful, no crash."""
        store = CountingCatalogStore()
        cat = CatalogTable.create(store)
        cat.append(
            Table({"ts": np.arange(50, dtype=np.int64)}), options=OPTS
        )
        cat.evolve(AddColumn("tag", "string"))
        cat.append(
            Table({
                "ts": np.arange(50, 100, dtype=np.int64),
                "tag": [b"x"] * 50,
            }),
            options=OPTS,
        )
        with cat.pin() as snap:
            res = snap.query(["count(tag)"])
            forced = snap.query(["count(tag)"], use_metadata=False)
        assert res.rows[0]["count(tag)"] == 100
        assert forced.rows[0]["count(tag)"] == 100
