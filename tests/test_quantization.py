"""Tests for storage quantization (§2.4, Fig 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    BIT_LAYOUT,
    FloatFormat,
    HashFold,
    IdRemap,
    QuantizationError,
    QuantizationPolicy,
    STORAGE_BYTES,
    auto_assign,
    dequantize,
    downcast,
    error_budget_assign,
    hi_as_bf16_float,
    join_bits,
    join_numeric,
    quantize,
    smallest_signed_dtype,
    split_bits,
    split_numeric,
)


class TestBitLayouts:
    def test_fig6_budgets(self):
        """Exactly the sign/exponent/fraction table of Fig 6."""
        assert BIT_LAYOUT[FloatFormat.FP64] == (1, 11, 52)
        assert BIT_LAYOUT[FloatFormat.FP32] == (1, 8, 23)
        assert BIT_LAYOUT[FloatFormat.TF32] == (1, 8, 10)
        assert BIT_LAYOUT[FloatFormat.FP16] == (1, 5, 10)
        assert BIT_LAYOUT[FloatFormat.BF16] == (1, 8, 7)
        assert BIT_LAYOUT[FloatFormat.FP8_E5M2] == (1, 5, 2)
        assert BIT_LAYOUT[FloatFormat.FP8_E4M3] == (1, 4, 3)

    def test_layouts_sum_to_storage(self):
        for fmt, (s, e, m) in BIT_LAYOUT.items():
            if fmt == FloatFormat.TF32:
                continue  # 19-bit format stored in 32
            assert s + e + m == STORAGE_BYTES[fmt] * 8


class TestFloatFormats:
    def test_fp16_exact_for_representables(self):
        data = np.array([1.5, -0.25, 1024.0], dtype=np.float32)
        assert np.array_equal(
            dequantize(quantize(data, FloatFormat.FP16), FloatFormat.FP16), data
        )

    def test_bf16_preserves_exponent_range(self):
        data = np.array([1e38, 1e-38, -1e20], dtype=np.float32)
        back = dequantize(quantize(data, FloatFormat.BF16), FloatFormat.BF16)
        assert np.all(np.isfinite(back))
        assert np.allclose(back, data, rtol=0.01)

    def test_fp16_overflows_where_bf16_does_not(self):
        data = np.array([1e20], dtype=np.float32)
        fp16 = dequantize(quantize(data, FloatFormat.FP16), FloatFormat.FP16)
        bf16 = dequantize(quantize(data, FloatFormat.BF16), FloatFormat.BF16)
        assert np.isinf(fp16[0])  # out of fp16 range
        assert np.isfinite(bf16[0])  # bf16 keeps fp32's exponent bits

    def test_tf32_mantissa_truncation(self):
        data = np.array([1.0 + 2**-11], dtype=np.float32)
        tf32 = quantize(data, FloatFormat.TF32)
        assert tf32[0] in (np.float32(1.0), np.float32(1.0 + 2**-10))

    def test_fp8_e4m3_saturates_not_inf(self):
        data = np.array([1e6, -1e6], dtype=np.float32)
        back = dequantize(
            quantize(data, FloatFormat.FP8_E4M3), FloatFormat.FP8_E4M3
        )
        assert back[0] == 448.0 and back[1] == -448.0  # OCP max magnitude

    def test_fp8_e5m2_keeps_infinity(self):
        data = np.array([np.inf, -np.inf], dtype=np.float32)
        back = dequantize(
            quantize(data, FloatFormat.FP8_E5M2), FloatFormat.FP8_E5M2
        )
        assert np.isinf(back[0]) and back[0] > 0
        assert np.isinf(back[1]) and back[1] < 0

    def test_nan_survives_every_format(self):
        data = np.array([np.nan], dtype=np.float32)
        for fmt in FloatFormat:
            back = dequantize(quantize(data, fmt), fmt)
            assert np.isnan(back[0]), fmt

    def test_signs_preserved(self):
        data = np.array([-1.0, 1.0, -0.5, 0.5], dtype=np.float32)
        for fmt in (FloatFormat.FP8_E4M3, FloatFormat.FP8_E5M2,
                    FloatFormat.BF16, FloatFormat.FP16):
            back = dequantize(quantize(data, fmt), fmt)
            assert np.all(np.sign(back) == np.sign(data)), fmt

    def test_error_ordering_matches_precision(self):
        """More mantissa bits -> lower error, embeddings in (-1,1)."""
        rng = np.random.default_rng(0)
        emb = np.tanh(rng.normal(size=5000)).astype(np.float32)
        errs = {
            fmt: QuantizationError.measure(emb, fmt).mean_relative_error
            for fmt in (
                FloatFormat.FP16,
                FloatFormat.BF16,
                FloatFormat.FP8_E4M3,
            )
        }
        assert errs[FloatFormat.FP16] < errs[FloatFormat.BF16]
        assert errs[FloatFormat.BF16] < errs[FloatFormat.FP8_E4M3]

    @given(st.lists(st.floats(-400, 400, allow_nan=False), min_size=1,
                    max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_property_fp8_idempotent(self, values):
        """Quantizing an already-quantized column is a fixed point."""
        data = np.array(values, dtype=np.float32)
        once = dequantize(quantize(data, FloatFormat.FP8_E4M3),
                          FloatFormat.FP8_E4M3)
        twice = dequantize(quantize(once, FloatFormat.FP8_E4M3),
                           FloatFormat.FP8_E4M3)
        assert np.array_equal(once, twice)


class TestIntegerQuantization:
    def test_smallest_dtype(self):
        assert smallest_signed_dtype(0, 100) == np.int8
        assert smallest_signed_dtype(-200, 100) == np.int16
        assert smallest_signed_dtype(0, 2**20) == np.int32
        assert smallest_signed_dtype(0, 2**40) == np.int64

    def test_downcast_lossless(self):
        data = np.array([-3, 120, 7], dtype=np.int64)
        out = downcast(data)
        assert out.dtype == np.int8
        assert np.array_equal(out.astype(np.int64), data)

    def test_downcast_rejects_floats(self):
        with pytest.raises(TypeError):
            downcast(np.array([1.5]))

    def test_idremap_lossless_and_narrow(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 10**15, 5000).astype(np.int64)
        remap = IdRemap.build(ids)
        assert np.array_equal(remap.restore(), ids)
        assert remap.code_bytes <= 2  # ≤ 5000 distinct -> int16
        assert remap.storage_savings() <= 0.25

    def test_hashfold_collision_rate_drops_with_bits(self):
        rng = np.random.default_rng(2)
        ids = rng.integers(0, 10**12, 20000)
        low = HashFold.build(ids, bits=10).collision_rate
        high = HashFold.build(ids, bits=28).collision_rate
        assert high < low
        assert low > 0.1  # 20k ids into 1k buckets must collide


class TestDualColumn:
    def test_bit_split_exact(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=1000).astype(np.float32)
        hi, lo = split_bits(data)
        assert hi.dtype == np.uint16 and lo.dtype == np.uint16
        assert np.array_equal(join_bits(hi, lo), data)

    def test_hi_half_is_bf16_view(self):
        data = np.array([1.5, -2.25], dtype=np.float32)
        hi, _lo = split_bits(data)
        approx = hi_as_bf16_float(hi)
        assert np.allclose(approx, data, rtol=0.01)

    def test_numeric_split_improves_on_fp16(self):
        rng = np.random.default_rng(4)
        data = (rng.normal(size=2000) * 100).astype(np.float32)
        hi, lo = split_numeric(data)
        joined = join_numeric(hi, lo)
        fp16_only = hi.astype(np.float32)
        err_joined = np.abs(joined - data).mean()
        err_fp16 = np.abs(fp16_only - data).mean()
        assert err_joined < err_fp16 / 10


class TestPolicies:
    def test_policy_apply_and_savings(self):
        rng = np.random.default_rng(5)
        cols = {f"f{i}": rng.normal(size=100).astype(np.float32) for i in range(4)}
        policy = QuantizationPolicy(
            assignments={
                "f0": FloatFormat.FP32,
                "f1": FloatFormat.FP16,
                "f2": FloatFormat.FP8_E4M3,
            },
            default=FloatFormat.BF16,
        )
        qt = policy.apply(cols)
        # 4 + 2 + 1 + 2 = 9 bytes/row vs 16 fp32
        assert qt.stored_bytes() == 100 * 9
        assert abs(qt.savings() - (1 - 9 / 16)) < 1e-9
        assert qt.read("f1").dtype == np.float32

    def test_auto_assign_tiers(self):
        sens = {f"f{i}": float(i) for i in range(100)}
        policy = auto_assign(sens)
        assert policy.format_for("f99") == FloatFormat.FP32
        assert policy.format_for("f70") == FloatFormat.FP16
        assert policy.format_for("f5") == FloatFormat.FP8_E4M3

    def test_error_budget_assign(self):
        rng = np.random.default_rng(6)
        cols = {
            "easy": np.round(rng.normal(size=500), 1).astype(np.float32),
            "hard": (rng.normal(size=500) * 1e-6).astype(np.float32),
        }
        policy = error_budget_assign(cols, max_relative_error=1e-3)
        # fp8 (and bf16) cannot hit 1e-3 mean relative error; fp16 can
        assert policy.format_for("easy") == FloatFormat.FP16
        # tiny magnitudes fall into fp16 subnormals: only fp32 fits
        assert policy.format_for("hard") == FloatFormat.FP32
        q = policy.apply(cols)
        for name, values in cols.items():
            err = QuantizationError.measure(values, policy.format_for(name))
            assert err.mean_relative_error <= 1e-3
