"""Tests for repro.util.bitio: byte streams and bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitio import (
    ByteReader,
    ByteWriter,
    get_packed_value,
    min_bit_width,
    pack_bits,
    set_packed_value,
    unpack_bits,
)


class TestByteWriterReader:
    def test_scalar_roundtrip(self):
        w = ByteWriter()
        w.write_u8(7)
        w.write_u16(65535)
        w.write_u32(123456)
        w.write_u64(2**63)
        w.write_i64(-42)
        w.write_f64(3.25)
        r = ByteReader(w.getvalue())
        assert r.read_u8() == 7
        assert r.read_u16() == 65535
        assert r.read_u32() == 123456
        assert r.read_u64() == 2**63
        assert r.read_i64() == -42
        assert r.read_f64() == 3.25
        assert r.remaining() == 0

    def test_blob_roundtrip(self):
        w = ByteWriter()
        w.write_blob(b"hello")
        w.write_blob(b"")
        r = ByteReader(w.getvalue())
        assert r.read_blob() == b"hello"
        assert r.read_blob() == b""

    def test_array_roundtrip(self):
        arr = np.array([1, -2, 3], dtype=np.int64)
        w = ByteWriter()
        w.write_array(arr)
        r = ByteReader(w.getvalue())
        assert np.array_equal(r.read_array(np.int64, 3), arr)

    def test_read_past_end_raises(self):
        r = ByteReader(b"abc")
        with pytest.raises(ValueError, match="exceeds"):
            r.read(4)

    def test_reader_offset_start(self):
        r = ByteReader(b"\x00\x01\x02", offset=1)
        assert r.read_u8() == 1

    def test_len_tracks_written_bytes(self):
        w = ByteWriter()
        w.write_u32(0)
        w.write(b"xy")
        assert len(w) == 6


class TestBitPacking:
    def test_min_bit_width(self):
        assert min_bit_width(np.array([], dtype=np.uint64)) == 0
        assert min_bit_width(np.array([0], dtype=np.uint64)) == 0
        assert min_bit_width(np.array([1], dtype=np.uint64)) == 1
        assert min_bit_width(np.array([255], dtype=np.uint64)) == 8
        assert min_bit_width(np.array([256], dtype=np.uint64)) == 9

    def test_min_bit_width_rejects_negative(self):
        with pytest.raises(ValueError):
            min_bit_width(np.array([-1], dtype=np.int64))

    def test_pack_unpack_basic(self):
        values = np.array([0, 1, 5, 7], dtype=np.uint64)
        packed = pack_bits(values, 3)
        assert len(packed) == (3 * 4 + 7) // 8
        assert np.array_equal(unpack_bits(packed, 3, 4), values)

    def test_width_zero(self):
        assert pack_bits(np.zeros(10, dtype=np.uint64), 0) == b""
        assert np.array_equal(
            unpack_bits(b"", 0, 10), np.zeros(10, dtype=np.uint64)
        )

    def test_width_64(self):
        values = np.array([2**64 - 1, 0, 12345], dtype=np.uint64)
        packed = pack_bits(values, 64)
        assert np.array_equal(unpack_bits(packed, 64, 3), values)

    def test_width_over_64_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([1], dtype=np.uint64), 65)

    def test_truncated_buffer_raises(self):
        packed = pack_bits(np.array([7, 7, 7], dtype=np.uint64), 3)
        with pytest.raises(ValueError, match="too small"):
            unpack_bits(packed[:0], 3, 3)

    @given(
        st.lists(st.integers(0, 2**32 - 1), min_size=0, max_size=200),
        st.integers(32, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values, width):
        arr = np.array(values, dtype=np.uint64)
        packed = pack_bits(arr, width)
        assert np.array_equal(unpack_bits(packed, width, len(arr)), arr)


class TestInPlaceSlotAccess:
    """set/get_packed_value back the §2.1 bit-packed deletion masker."""

    def test_set_and_get(self):
        values = np.array([3, 5, 7, 1], dtype=np.uint64)
        buf = bytearray(pack_bits(values, 3))
        set_packed_value(buf, 2, 3, 0)
        assert get_packed_value(buf, 2, 3) == 0
        out = unpack_bits(bytes(buf), 3, 4)
        assert np.array_equal(out, [3, 5, 0, 1])

    def test_neighbours_untouched(self):
        values = np.arange(16, dtype=np.uint64)
        buf = bytearray(pack_bits(values, 5))
        set_packed_value(buf, 7, 5, 31)
        out = unpack_bits(bytes(buf), 5, 16)
        expected = values.copy()
        expected[7] = 31
        assert np.array_equal(out, expected)

    def test_value_too_wide_rejected(self):
        buf = bytearray(pack_bits(np.array([1], dtype=np.uint64), 2))
        with pytest.raises(ValueError):
            set_packed_value(buf, 0, 2, 4)

    def test_width_zero_noop(self):
        buf = bytearray()
        set_packed_value(buf, 3, 0, 0)
        assert get_packed_value(b"", 3, 0) == 0
