"""Tests for the Scan read path: lazy batches, pruning, parallel fetch."""

import numpy as np
import pytest

from repro.core import (
    BullionReader,
    BullionWriter,
    Predicate,
    Table,
    WriterOptions,
    delete_rows,
)
from repro.iosim import SimulatedStorage
from repro.quantization import FloatFormat, QuantizationPolicy


def fixture_tables():
    """All the shapes the writer/reader round-trip suite exercises."""
    rng = np.random.default_rng(3)
    n = 300
    yield "primitives", Table(
        {
            "i64": rng.integers(-(10**9), 10**9, n).astype(np.int64),
            "i32": rng.integers(-100, 100, n).astype(np.int32),
            "f64": rng.normal(size=n),
            "f32": rng.normal(size=n).astype(np.float32),
            "b": rng.random(n) < 0.3,
            "s": [f"row{i}".encode() for i in range(n)],
        }
    )
    yield "lists", Table(
        {
            "li": [
                rng.integers(0, 100, int(rng.integers(0, 6))).astype(np.int64)
                for _ in range(100)
            ],
            "lf": [rng.normal(size=3).astype(np.float32) for _ in range(100)],
            "lb": [[b"a", b"bb"][: i % 3] for i in range(100)],
        }
    )
    yield "empty", Table({"a": np.zeros(0, dtype=np.int64), "s": []})
    yield "single", Table({"a": np.array([7], dtype=np.int64), "s": [b"x"]})


def _write(table, **opts):
    dev = SimulatedStorage()
    BullionWriter(dev, options=WriterOptions(**opts)).write(table)
    return dev


class TestScanProjectEquivalence:
    @pytest.mark.parametrize(
        "name,table", list(fixture_tables()), ids=lambda v: v if isinstance(v, str) else ""
    )
    def test_scan_equals_project_on_fixtures(self, name, table):
        dev = _write(table, rows_per_page=32, rows_per_group=64)
        reader = BullionReader(dev)
        columns = list(table.columns)
        projected = reader.project(columns)
        scanned = reader.scan(columns, max_workers=4).to_table()
        assert scanned.equals(projected)
        assert projected.equals(table)

    def test_parallel_and_serial_scans_agree(self):
        table = Table({"x": np.arange(5000, dtype=np.int64)})
        dev = _write(table, rows_per_page=100, rows_per_group=200)
        reader = BullionReader(dev)
        serial = reader.scan(["x"], max_workers=0).to_table()
        parallel = reader.scan(["x"], max_workers=8).to_table()
        assert serial.equals(parallel)
        assert serial.equals(table)

    def test_quantization_widening_in_scan(self):
        rng = np.random.default_rng(5)
        table = Table({"y": rng.normal(size=400).astype(np.float32)})
        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=100,
                rows_per_group=200,
                quantization=QuantizationPolicy(default=FloatFormat.FP16),
            ),
        ).write(table)
        out = (
            BullionReader(dev)
            .scan(["y"], widen_quantized=True)
            .to_table()
        )
        assert out.column("y").dtype == np.float32
        assert np.allclose(out.column("y"), table.column("y"), atol=1e-3)


class TestBatching:
    def test_batch_size_exact_across_group_boundaries(self):
        table = Table({"x": np.arange(1000, dtype=np.int64)})
        dev = _write(table, rows_per_page=64, rows_per_group=128)
        batches = list(BullionReader(dev).scan(["x"], batch_size=300))
        assert [b.num_rows for b in batches] == [300, 300, 300, 100]
        assert np.array_equal(
            np.concatenate([b.column("x") for b in batches]), table.column("x")
        )

    def test_default_batches_are_row_groups(self):
        table = Table({"x": np.arange(1000, dtype=np.int64)})
        dev = _write(table, rows_per_page=100, rows_per_group=200)
        batches = list(BullionReader(dev).scan(["x"]))
        assert [b.num_rows for b in batches] == [200] * 5

    def test_bad_batch_size_rejected(self):
        table = Table({"x": np.arange(10, dtype=np.int64)})
        dev = _write(table)
        with pytest.raises(ValueError, match="positive"):
            list(BullionReader(dev).scan(["x"], batch_size=0))

    def test_scan_is_lazy(self):
        table = Table({"x": np.arange(1000, dtype=np.int64)})
        dev = _write(table, rows_per_page=100, rows_per_group=100)
        dev.stats.reset()
        reader = BullionReader(dev)
        after_open = dev.stats.bytes_read
        scan = reader.scan(["x"], max_workers=0)
        assert dev.stats.bytes_read == after_open  # nothing fetched yet
        next(iter(scan))
        assert dev.stats.bytes_read > after_open
        # a serial consumer that stops early reads far less than the file
        assert dev.stats.bytes_read - after_open < dev.size / 5


class TestPredicatePruning:
    def _file(self):
        # x ascends, so each 100-row group has tight disjoint min/max
        table = Table({"x": np.arange(1000, dtype=np.int64)})
        return _write(table, rows_per_page=100, rows_per_group=100), table

    def test_pruned_scan_matches_pruned_project(self):
        dev, _table = self._file()
        reader = BullionReader(dev)
        pred = Predicate("x", min_value=250, max_value=449)
        scan = reader.scan(["x"], predicate=pred)
        assert scan.row_groups == [2, 3, 4]
        expected = reader.project(["x"], row_groups=scan.row_groups)
        assert scan.to_table().equals(expected)

    def test_pruning_skips_data_io(self):
        dev, _table = self._file()
        reader = BullionReader(dev)
        dev.stats.reset()
        before = dev.stats.bytes_read
        out = reader.scan(
            ["x"], predicate=Predicate("x", min_value=900)
        ).to_table()
        assert np.array_equal(out.column("x"), np.arange(900, 1000))
        assert dev.stats.bytes_read - before < dev.size / 5

    def test_all_groups_pruned_yields_typed_empty(self):
        dev, _table = self._file()
        reader = BullionReader(dev)
        out = reader.scan(
            ["x"], predicate=Predicate("x", min_value=10**9)
        ).to_table()
        assert out.num_rows == 0
        assert out.column("x").dtype == np.int64

    def test_predicate_intersects_explicit_groups(self):
        dev, _table = self._file()
        reader = BullionReader(dev)
        scan = reader.scan(
            ["x"],
            predicate=Predicate("x", min_value=250, max_value=449),
            row_groups=[0, 3, 9],
        )
        assert scan.row_groups == [3]


class TestDeletionInteraction:
    def test_scan_drops_deleted_rows(self):
        table = Table({"x": np.arange(1000, dtype=np.int64)})
        dev = _write(table, rows_per_page=100, rows_per_group=200)
        delete_rows(dev, range(150, 350))
        reader = BullionReader(dev)
        out = reader.scan(["x"], max_workers=4).to_table()
        assert out.num_rows == 800
        assert not np.isin(np.arange(150, 350), out.column("x")).any()
        assert out.equals(reader.project(["x"]))

    def test_scan_can_keep_deleted_rows(self):
        table = Table({"x": np.arange(400, dtype=np.int64)})
        dev = _write(table, rows_per_page=100, rows_per_group=200)
        delete_rows(dev, range(100))
        reader = BullionReader(dev)
        out = reader.scan(["x"], drop_deleted=False).to_table()
        assert out.num_rows == 400

    def test_batched_scan_with_deletions(self):
        table = Table({"x": np.arange(1000, dtype=np.int64)})
        dev = _write(table, rows_per_page=100, rows_per_group=200)
        delete_rows(dev, range(0, 1000, 2))  # every other row
        batches = list(BullionReader(dev).scan(["x"], batch_size=64))
        seen = np.concatenate([b.column("x") for b in batches])
        assert np.array_equal(seen, np.arange(1, 1000, 2))
        assert all(b.num_rows == 64 for b in batches[:-1])


class TestChunkCache:
    def test_repeat_scans_hit_cache(self):
        table = Table({"x": np.arange(1000, dtype=np.int64)})
        dev = _write(table, rows_per_page=100, rows_per_group=200)
        reader = BullionReader(dev)
        reader.scan(["x"], max_workers=0).to_table()
        dev.stats.reset()
        before = dev.stats.bytes_read
        reader.scan(["x"], max_workers=0).to_table()
        assert dev.stats.bytes_read == before  # served from cache
        assert reader.chunk_cache.hits >= 5

    def test_cache_capacity_evicts(self):
        from repro.core import ChunkCache

        cache = ChunkCache(capacity=2)
        cache.put((0, 0), b"a")
        cache.put((0, 1), b"b")
        cache.put((0, 2), b"c")
        assert cache.get((0, 0)) is None
        assert cache.get((0, 2)) == b"c"
        assert len(cache) == 2

    def test_invalidate_cache_forces_reread(self):
        table = Table({"x": np.arange(200, dtype=np.int64)})
        dev = _write(table, rows_per_page=100, rows_per_group=200)
        reader = BullionReader(dev)
        reader.project(["x"])
        reader.invalidate_cache()
        dev.stats.reset()
        reader.project(["x"])
        assert dev.stats.bytes_read > 0


class TestEmptyProjectionDtypes:
    """The _concat satellite fix: empty columns keep their types."""

    def test_empty_float_and_string_columns(self):
        table = Table(
            {
                "f": np.zeros(0, dtype=np.float64),
                "f32": np.zeros(0, dtype=np.float32),
                "s": [],
            }
        )
        dev = _write(table)
        out = BullionReader(dev).project(["f", "f32", "s"])
        assert out.column("f").dtype == np.float64
        assert out.column("f32").dtype == np.float32
        assert isinstance(out.column("s"), list) and out.column("s") == []


class TestDuplicateProjection:
    def test_duplicate_column_parallel_matches_serial(self):
        table = Table({"a": np.arange(500, dtype=np.int64)})
        dev = _write(table, rows_per_page=50, rows_per_group=100)
        reader = BullionReader(dev)
        par = list(reader.scan(["a", "a"], max_workers=4))
        ser = list(reader.scan(["a", "a"], max_workers=0))
        assert len(par) == len(ser)
        for p, s in zip(par, ser):
            assert p.equals(s)
