"""Golden-bytes regression fixtures: the on-disk format is frozen.

Every hash below was produced by the *seed* encoders (pre-vectorization)
on fixed-seed workloads. The vectorized kernels must reproduce the exact
same bytes: footer checksums, Merkle leaves and the §2.1 deletion-scrub
alignment invariants all depend on them. A hash mismatch here means the
rewrite changed the format, not just the speed.

zlib-backed schemes (bitshuffle, chunked, and ALP's front-bits fallback)
are deliberately absent: their bytes depend on the platform's zlib
version, and the vectorization work does not touch them. For
sparse_list_delta the bulk child is pinned to Varint for the same
reason (its default Chunked child wraps zlib).
"""

import hashlib

import numpy as np
import pytest

from repro.encodings import (
    ALP,
    Chimp,
    Constant,
    Delta,
    Dictionary,
    FastBP128,
    FastPFOR,
    FixedBitWidth,
    FrameOfReference,
    FSST,
    Gorilla,
    Huffman,
    ListEncoding,
    MainlyConstant,
    Nullable,
    Pseudodecimal,
    RLE,
    Roaring,
    Sentinel,
    SparseBool,
    SparseListDelta,
    Trivial,
    Varint,
    ZigZag,
    decode_blob,
    encode_blob,
)


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def small_ints():
    return _rng(101).integers(0, 64, 4096).astype(np.int64)


def skewed_ints():
    # zipf-like skew clipped to a modest alphabet: the Huffman sweet spot
    return np.minimum(_rng(102).zipf(1.6, 4096), 500).astype(np.int64)


def signed_ints():
    return _rng(103).integers(-(10**9), 10**9, 4096).astype(np.int64)


def sorted_ids():
    return np.sort(_rng(104).integers(0, 10**12, 4096)).astype(np.int64)


def run_ints():
    g = _rng(105)
    return np.repeat(g.integers(0, 8, 256), g.integers(1, 40, 256)).astype(
        np.int64
    )


def outlier_ints():
    g = _rng(106)
    base = g.integers(0, 100, 4096)
    spikes = g.random(4096) < 0.05
    return np.where(spikes, g.integers(10**6, 10**9, 4096), base).astype(
        np.int64
    )


def mostly_constant_ints():
    g = _rng(107)
    return np.where(g.random(4096) < 0.03, g.integers(0, 1000, 4096), 7).astype(
        np.int64
    )


def masked_ints():
    g = _rng(108)
    return np.ma.MaskedArray(
        g.integers(0, 1000, 2048).astype(np.int64), mask=g.random(2048) < 0.2
    )


def smooth_series():
    return 20.0 + np.cumsum(_rng(109).normal(0, 0.01, 4096))


def smooth_series32():
    return smooth_series().astype(np.float32)


def series_with_specials():
    data = smooth_series()
    data[7] = np.inf
    data[19] = -np.inf
    data[23] = np.nan
    data[101] = np.float64(np.float32(np.nan))
    data[1000] = 0.0
    data[1001] = -0.0
    return data


def decimal_floats():
    return np.round(_rng(110).uniform(-1000, 1000, 4096), 2)


def sparse_bools():
    return _rng(111).random(200_000) < 0.005


def dense_bools():
    return _rng(112).random(200_000) < 0.6


def url_strings():
    g = _rng(113)
    return [
        f"https://example.com/watch?v={int(g.integers(0, 300))}"
        f"&session={int(g.integers(0, 50))}".encode()
        for _ in range(2000)
    ]


def binary_strings():
    # raw bytes incl. 0xFF so the FSST escape path is pinned down
    g = _rng(114)
    return [bytes(g.integers(0, 256, int(g.integers(0, 60))).astype(np.uint8))
            for _ in range(500)]


def int_lists():
    g = _rng(115)
    return [
        g.integers(0, 10**6, int(g.integers(0, 40))).astype(np.int64)
        for _ in range(200)
    ]


def sliding_windows():
    g = _rng(116)
    window = list(g.integers(0, 10**6, 256))
    rows = []
    for _ in range(150):
        window = ([int(g.integers(0, 10**6))] + window)[:256]
        rows.append(np.array(window, dtype=np.int64))
    return rows


def two_symbols():
    return np.resize(np.array([3, 11], dtype=np.int64), 1001)


def one_symbol():
    return np.full(513, 42, dtype=np.int64)


#: (case id, encoding factory, workload builder) — ids are stable keys
CASES = [
    ("trivial/signed", Trivial, signed_ints),
    ("fixed_bit_width/small", FixedBitWidth, small_ints),
    ("varint/small", Varint, small_ints),
    ("varint/outliers", Varint, outlier_ints),
    ("zigzag/signed", ZigZag, signed_ints),
    ("rle/runs", RLE, run_ints),
    ("dictionary/small", Dictionary, small_ints),
    ("dictionary/urls", Dictionary, url_strings),
    ("delta/sorted", Delta, sorted_ids),
    ("for/signed", FrameOfReference, signed_ints),
    ("huffman/small", Huffman, small_ints),
    ("huffman/skewed", Huffman, skewed_ints),
    ("huffman/two_symbols", Huffman, two_symbols),
    ("huffman/one_symbol", Huffman, one_symbol),
    ("fastpfor/small", FastPFOR, small_ints),
    ("fastpfor/outliers", FastPFOR, outlier_ints),
    ("fastbp128/small", FastBP128, small_ints),
    ("fastbp128/outliers", FastBP128, outlier_ints),
    ("constant/const", Constant, one_symbol),
    ("mainly_constant/mostly", MainlyConstant, mostly_constant_ints),
    ("nullable/masked", Nullable, masked_ints),
    ("sentinel/masked", Sentinel, masked_ints),
    ("sparse_bool/sparse", SparseBool, sparse_bools),
    ("roaring/sparse", Roaring, sparse_bools),
    ("roaring/dense", Roaring, dense_bools),
    ("fsst/urls", FSST, url_strings),
    ("fsst/binary", FSST, binary_strings),
    ("gorilla/series", Gorilla, smooth_series),
    ("gorilla/series32", Gorilla, smooth_series32),
    ("gorilla/specials", Gorilla, series_with_specials),
    ("chimp/series", Chimp, smooth_series),
    ("chimp/series32", Chimp, smooth_series32),
    ("chimp/specials", Chimp, series_with_specials),
    ("pseudodecimal/decimals", Pseudodecimal, decimal_floats),
    ("alp/decimals", ALP, decimal_floats),
    ("list/lists", ListEncoding, int_lists),
    (
        "sparse_list_delta/windows",
        lambda: SparseListDelta(bulk_child=Varint()),
        sliding_windows,
    ),
]

#: sha256 of the seed encoders' blobs — regenerate ONLY for a deliberate
#: format change: python -c "from tests.test_encodings_golden import *; print_golden()"
GOLDEN = {
    "trivial/signed": "59c11efb85527b81c511d7c8d79c1634a26cfbf34d8cee60248597d9ce94c5a5",
    "fixed_bit_width/small": "4789410e7e10cacf0627f79aedc7a2c3db6acd0056b78ea81678bdec83af8f95",
    "varint/small": "d7025187af7f696139bee14d052dd56ae2b74da315c80b558b574954d45b0c20",
    "varint/outliers": "691d2478163f34eec386040d979c3d4e317dd8c99136fc43f6f59faea5fada73",
    "zigzag/signed": "36a810643248e115465a2934227d72fddc1e1dc664af5c6a18b96bb5b9529ab1",
    "rle/runs": "a0354d46a6399d9877184e121cf07fc14a969f37ea329cbb8fba77cfd91bf894",
    "dictionary/small": "f649fb16fe0a411934af29a304f6589ea857eec7f792b5cf4a0ce3fccfb2aadb",
    "dictionary/urls": "11e7f4126bc573a95a9aa45f1b563372804b7d099467c989f907512b53f1392b",
    "delta/sorted": "c5e4872180b246334583c9e369f9fb5d478c4d8575e64ea4825c25035f54ae12",
    "for/signed": "21c0877d228451c6d271a69a33aac828fc7832ef4e50c0533c2d5b265efd7f4d",
    "huffman/small": "474a4930239061ff16527c20240cf002a250f2234cd1d4e2eb45ccafd1f1e9f8",
    "huffman/skewed": "8157df571879ce0b37dfadfe0f347d51557a5cc8004cfdfc27972d72ecfb50cb",
    "huffman/two_symbols": "e1141756a6a7dc098d6c547ed20797993832b4205ce5b10bc0bc985fc4ed1508",
    "huffman/one_symbol": "987ed7357523213467df69ebb62601c41d3bbef881b10bded2d68117f1595330",
    "fastpfor/small": "304dbd43ec121f2a3b9aea27be1d2cae46ec115fa006912fafa1ac5519baa527",
    "fastpfor/outliers": "b0de7802b7bf829ae64fc2ffd663506b26144d3e19b5720614557c8340707b13",
    "fastbp128/small": "63043950d32d9782546e29a9a27fcd047a8966d056e5e81356d3b340d49c4b04",
    "fastbp128/outliers": "1096667db1d83f28ea543fdbdd0463d013f841f43f67e705e7ce561ee547b69a",
    "constant/const": "8a5d2ff99d14369c9902eae99ce12f294da448acce6d67adcf95a458e3a60a68",
    "mainly_constant/mostly": "f7f4a23f511b7311c335ea7438e8fb49bf6f5c7a79a68d3c3db7ce776471bef7",
    "nullable/masked": "bdbdc6b28ab97092ffde8632d02225f5a867aea39a03963e03bfef66661bc2e9",
    "sentinel/masked": "8c800b2badeaba1903f1428254deadbe716c340eb2ad6098de9b29c703525b26",
    "sparse_bool/sparse": "955097302ed8ed615140c14daa7d08492c712f74ead7b3cffc8d306db3dc56c7",
    "roaring/sparse": "f4bb109f841b0a1c5fc55d48fe760bec2ad8aec1a8cf67dd0904bbbc847aaa8f",
    "roaring/dense": "1846b29851c76c899f75988c30390ca23765b699cb23d220af4eab1cd54cc61d",
    "fsst/urls": "63789c207265327c1603406f0686f26bd440e153b409e0860c286eee7b0f0d0b",
    "fsst/binary": "6459449d3c713cfb21e90d485c737feb2867f6ee8f8375f8b38ca48c438240d3",
    "gorilla/series": "228d8a1876e56f6f0ec760cedd999b95692b15b710d28af96e837b8d1827e29a",
    "gorilla/series32": "5abc5794db98df9ca219215cce1601641a8ef64d84877a4e23b95f405c15f33a",
    "gorilla/specials": "66cc99f9f7f57e5185d57ba9d20a53caf53bc4356e6d3e594cfd20c9dadec80c",
    "chimp/series": "8cc8578b150c2d53a2107fc78772611d05f84d90962565c1015aa82c2637352a",
    "chimp/series32": "1904d8e3449213f4b46181f03e0a2bde3e766f620e993eb3a633b6a2d1912f00",
    "chimp/specials": "adf91ecc89b5256b1abe1249c78dbdbc79548dcea9eef90ec28fcb6da70ce01c",
    "pseudodecimal/decimals": "2774f220abe1270e265224640ad5c19a777815dba235d3a9f771247e0f03a55c",
    "alp/decimals": "a74930102fc3446e3678512d5e3b2e31f7c11451b1ca77a30be61b840226984f",
    "list/lists": "3f07f328a17bc353b0a6ed23b7a58ca14c1660c438f3469a7fda446ff05c5db1",
    "sparse_list_delta/windows": "409db45ff5be1cdc3988c364bd46a1dbe6bbc5b411a7762e0165733d6a1f0f9d",
}


def blob_for(case_id: str) -> bytes:
    factory, builder = next(
        (f, b) for cid, f, b in CASES if cid == case_id
    )
    return encode_blob(builder(), factory())


def print_golden() -> None:  # pragma: no cover - regeneration helper
    for case_id, factory, builder in CASES:
        digest = hashlib.sha256(encode_blob(builder(), factory())).hexdigest()
        print(f'    "{case_id}": "{digest}",')


@pytest.mark.parametrize("case_id", [c[0] for c in CASES])
def test_golden_bytes(case_id):
    factory, builder = next((f, b) for cid, f, b in CASES if cid == case_id)
    data = builder()
    blob = encode_blob(data, factory())
    assert hashlib.sha256(blob).hexdigest() == GOLDEN[case_id], (
        f"{case_id}: encoder output changed — the on-disk format is frozen; "
        "a vectorized kernel must be byte-identical to the seed encoder"
    )
    # and the frozen bytes still decode to the source values
    out = decode_blob(blob)
    if isinstance(data, np.ma.MaskedArray):
        assert np.array_equal(
            np.ma.getmaskarray(out), np.ma.getmaskarray(data)
        )
        assert np.array_equal(out.filled(0), data.filled(0))
    elif isinstance(data, np.ndarray):
        assert np.array_equal(out, data, equal_nan=data.dtype.kind == "f")
    elif data and isinstance(data[0], np.ndarray):
        assert all(np.array_equal(a, b) for a, b in zip(out, data))
    else:
        assert list(out) == list(data)
