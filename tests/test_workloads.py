"""Tests for the workload generators (Table 1, Fig 1, Fig 3, events)."""

import numpy as np
import pytest

from repro.workloads import (
    AdsDataConfig,
    EmbeddingConfig,
    EventLogConfig,
    EventType,
    MultimodalConfig,
    SlidingWindowConfig,
    TABLE1_BREAKDOWN,
    TABLE1_TOTAL_COLUMNS,
    build_ads_schema,
    census_of,
    embedding_table,
    estimate_table_size_pb,
    generate_ads_table,
    generate_click_sequences,
    generate_embeddings,
    generate_event_log,
    generate_samples,
    impression_centric_table,
    overlap_profile,
    storage_comparison,
    top10_table_sizes_pb,
    user_centric_table,
)


class TestAdsSchema:
    def test_census_matches_table1_exactly(self):
        schema = build_ads_schema()
        assert census_of(schema) == TABLE1_BREAKDOWN
        assert len(schema.fields) == TABLE1_TOTAL_COLUMNS == 17733

    def test_list_int64_dominates(self):
        assert TABLE1_BREAKDOWN["list<int64>"] == 16256
        assert TABLE1_BREAKDOWN["list<int64>"] / TABLE1_TOTAL_COLUMNS > 0.9

    def test_scaled_schema_keeps_type_mix(self):
        small = build_ads_schema(scale=0.01)
        census = census_of(small)
        assert set(census) == set(TABLE1_BREAKDOWN)  # every type present
        assert census["list<int64>"] == round(16256 * 0.01)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            build_ads_schema(scale=0)

    def test_generated_table_covers_physical_columns(self):
        schema = build_ads_schema(scale=0.001)
        table = generate_ads_table(schema, AdsDataConfig(rows=32))
        expected = {c.name for c in schema.physical_columns()}
        assert set(table.columns) == expected
        assert table.num_rows == 32


class TestFig1Sizes:
    def test_descending_and_calibrated(self):
        sizes = top10_table_sizes_pb()
        assert len(sizes) == 10
        assert sizes == sorted(sizes, reverse=True)
        assert 90 <= sizes[0] <= 100  # "approach 100PB"
        assert 15 <= sizes[-1] <= 30

    def test_size_model_reaches_100pb_regime(self):
        # ~4e10 impression rows of the full ads schema ~ 100 PB
        pb = estimate_table_size_pb(rows=4e10)
        assert 30 <= pb <= 300


class TestSlidingWindows:
    def test_rows_sorted_by_user_then_time(self):
        rows, uids = generate_click_sequences(
            SlidingWindowConfig(n_users=5, events_per_user=4)
        )
        assert len(rows) == 20
        assert list(uids) == sorted(uids)

    def test_high_overlap_profile(self):
        rows, _ = generate_click_sequences(
            SlidingWindowConfig(n_users=10, events_per_user=20, window_size=64)
        )
        profile = overlap_profile(rows)
        assert profile["mean_overlap_fraction"] > 0.6
        assert profile["identical_fraction"] > 0.02

    def test_window_size_respected(self):
        rows, _ = generate_click_sequences(
            SlidingWindowConfig(n_users=2, events_per_user=5, window_size=32)
        )
        assert all(len(r) == 32 for r in rows)

    def test_deterministic_by_seed(self):
        cfg = SlidingWindowConfig(n_users=2, events_per_user=3, seed=9)
        a, _ = generate_click_sequences(cfg)
        b, _ = generate_click_sequences(cfg)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestEvents:
    def test_impression_table_binary_labels(self):
        log = generate_event_log(EventLogConfig(n_users=50, seed=1))
        imp = impression_centric_table(log)
        assert set(np.unique(imp.column("label"))) <= {0, 1}
        # impressions+conversions only
        n_imp = int(
            np.isin(
                log.event_type,
                [int(EventType.AD_IMPRESSION), int(EventType.AD_CONVERSION)],
            ).sum()
        )
        assert imp.num_rows == n_imp

    def test_user_table_one_row_per_user(self):
        log = generate_event_log(EventLogConfig(n_users=50, seed=1))
        usr = user_centric_table(log)
        assert usr.num_rows == len(np.unique(log.uid))
        # sequences are time-sorted within a user
        times = usr.column("event_times")[0]
        assert np.all(np.diff(times) >= 0)

    def test_storage_comparison_shape(self):
        log = generate_event_log(EventLogConfig(n_users=80, seed=2))
        cmp = storage_comparison(log)
        assert cmp["user_rows"] < cmp["impression_rows"]
        assert cmp["rows_ratio"] > 1


class TestEmbeddingsAndMultimodal:
    def test_embeddings_normalized(self):
        mat = generate_embeddings(EmbeddingConfig(n_vectors=100, dim=16))
        assert mat.shape == (100, 16)
        assert mat.dtype == np.float32
        assert np.abs(mat).max() <= 1.0

    def test_embedding_table_columns(self):
        cols = embedding_table(EmbeddingConfig(n_vectors=10, dim=4))
        assert set(cols) == {"dim_0", "dim_1", "dim_2", "dim_3"}

    def test_multimodal_samples_quality_long_tail(self):
        samples = generate_samples(MultimodalConfig(n_samples=1000, seed=0))
        scores = np.array([s.quality for s in samples])
        assert (scores > 0.7).mean() < 0.2  # thin high-quality head
        assert all(len(s.highlight_frames) == len(s.frame_index) for s in samples[:20])
