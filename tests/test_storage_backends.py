"""Tests for the pluggable storage backends (Storage protocol)."""

import numpy as np
import pytest

from repro.core import BullionReader, BullionWriter, Table, WriterOptions
from repro.iosim import (
    FileStorage,
    LatencyModelledStorage,
    SeekModel,
    SimulatedStorage,
    Storage,
)


def _table(n=500):
    rng = np.random.default_rng(7)
    return Table(
        {
            "x": np.arange(n, dtype=np.int64),
            "f": rng.normal(size=n),
            "s": [f"row{i}".encode() for i in range(n)],
        }
    )


class TestProtocol:
    def test_backends_satisfy_protocol(self, tmp_path):
        assert isinstance(SimulatedStorage(), Storage)
        with FileStorage(tmp_path / "f.bullion") as fs:
            assert isinstance(fs, Storage)
        assert isinstance(
            LatencyModelledStorage(SimulatedStorage()), Storage
        )


class TestFileStorage:
    def test_pread_pwrite_roundtrip(self, tmp_path):
        with FileStorage(tmp_path / "dev.bin") as dev:
            dev.pwrite(0, b"hello world")
            assert dev.pread(6, 5) == b"world"
            assert dev.size == 11

    def test_append_returns_offset(self, tmp_path):
        with FileStorage(tmp_path / "dev.bin") as dev:
            assert dev.append(b"abc") == 0
            assert dev.append(b"def") == 3
            assert dev.size == 6

    def test_write_past_end_zero_fills(self, tmp_path):
        with FileStorage(tmp_path / "dev.bin") as dev:
            dev.pwrite(10, b"x")
            assert dev.pread(0, 10) == b"\x00" * 10

    def test_read_past_end_raises(self, tmp_path):
        with FileStorage(tmp_path / "dev.bin") as dev:
            dev.append(b"ab")
            with pytest.raises(ValueError, match="beyond"):
                dev.pread(0, 3)

    def test_counters_match_simulator_semantics(self, tmp_path):
        with FileStorage(tmp_path / "dev.bin") as dev:
            dev.append(b"x" * 100)
            dev.pread(0, 40)
            dev.pread(40, 60)  # contiguous: no extra seek
            dev.pread(0, 10)  # back to start: seek
            assert dev.stats.reads == 3
            assert dev.stats.bytes_read == 110
            assert dev.stats.read_seeks == 2
            assert dev.stats.writes == 1

    def test_reopen_sees_existing_bytes(self, tmp_path):
        path = tmp_path / "dev.bin"
        with FileStorage(path) as dev:
            dev.append(b"persisted")
        with FileStorage(path) as dev:
            assert dev.size == 9
            assert dev.pread(0, 9) == b"persisted"

    def test_bullion_write_read_cycle_on_real_file(self, tmp_path):
        """The acceptance-criterion round trip on an actual temp file."""
        table = _table()
        path = tmp_path / "real.bullion"
        with FileStorage(path) as dev:
            BullionWriter(
                dev, options=WriterOptions(rows_per_page=64, rows_per_group=128)
            ).write(table)
        with FileStorage(path) as dev:
            reader = BullionReader(dev)
            assert reader.verify()
            out = reader.project(["x", "f", "s"])
            assert out.equals(table)

    def test_file_bytes_identical_to_simulated(self, tmp_path):
        table = _table(200)
        sim = SimulatedStorage()
        opts = WriterOptions(rows_per_page=50, rows_per_group=100)
        BullionWriter(sim, options=opts).write(table)
        with FileStorage(tmp_path / "same.bullion") as dev:
            BullionWriter(dev, options=opts).write(table)
            assert dev.raw_bytes() == sim.raw_bytes()


class TestLatencyModelledStorage:
    def test_charges_seek_and_bandwidth(self):
        inner = SimulatedStorage()
        model = SeekModel(seek_latency_s=1e-3, bandwidth_bytes_per_s=1e6)
        dev = LatencyModelledStorage(inner, model)
        dev.append(b"x" * 1000)  # 1 seek + 1000B/1MBps = 2 ms
        dev.pread(0, 500)  # 1 seek + 0.5 ms
        dev.pread(500, 500)  # contiguous: 0.5 ms
        assert abs(dev.elapsed_s - (2e-3 + 1.5e-3 + 0.5e-3)) < 1e-9

    def test_delegates_data_and_stats(self):
        inner = SimulatedStorage()
        dev = LatencyModelledStorage(inner)
        dev.append(b"abcdef")
        assert dev.pread(2, 3) == b"cde"
        assert dev.size == 6
        assert inner.stats.reads == 1
        assert dev.stats is inner.stats

    def test_wraps_file_backend(self, tmp_path):
        with FileStorage(tmp_path / "dev.bin") as inner:
            dev = LatencyModelledStorage(inner)
            table = _table(100)
            BullionWriter(
                dev, options=WriterOptions(rows_per_page=50, rows_per_group=50)
            ).write(table)
            assert BullionReader(dev).project(["x"]).column("x")[99] == 99
            assert dev.elapsed_s > 0


class TestReadOnlyFileStorage:
    def test_readonly_open_reads_unwritable_file(self, tmp_path):
        path = tmp_path / "ro.bin"
        with FileStorage(path) as dev:
            dev.append(b"locked down")
        path.chmod(0o444)
        with FileStorage(path, readonly=True) as dev:
            assert dev.pread(0, 6) == b"locked"
            with pytest.raises(ValueError, match="read-only"):
                dev.pwrite(0, b"x")
            with pytest.raises(ValueError, match="read-only"):
                dev.truncate(1)

    def test_missing_file_without_create_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FileStorage(tmp_path / "absent.bin", create=False)
