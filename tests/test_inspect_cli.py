"""CLI behavior of ``repro-inspect``: exit codes and error hygiene.

A malformed ``--where`` / ``--agg`` is a *usage* error: the tool must
exit with status 2 and a one-line ``repro-inspect:`` message — never a
traceback. Environment problems (missing file, no catalog) stay
status 1. The ``query`` subcommand's happy path is covered here too.
"""

import numpy as np
import pytest

from repro.catalog import CatalogTable, DirectoryCatalogStore
from repro.core import BullionWriter, Table, WriterOptions
from repro.iosim import FileStorage
from repro.tools.inspect import main


@pytest.fixture
def bullion_file(tmp_path):
    path = tmp_path / "data.bln"
    with FileStorage(str(path)) as dev:
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=10, rows_per_group=20)
        ).write(Table({
            "ts": np.arange(100, dtype=np.int64),
            "v": np.linspace(0, 1, 100),
        }))
    return str(path)


@pytest.fixture
def catalog_dir(tmp_path):
    root = tmp_path / "table"
    cat = CatalogTable.create(DirectoryCatalogStore(str(root)))
    for k in range(2):
        cat.append(
            Table({
                "ts": np.arange(k * 100, (k + 1) * 100, dtype=np.int64),
                "v": np.linspace(0, 1, 100),
                "region": np.arange(100, dtype=np.int64) % 3,
                "tag": [b"x"] * 100,
            }),
            options=WriterOptions(rows_per_page=20, rows_per_group=100),
        )
    return str(root)


def _run(argv, capsys):
    """Invoke main(); return (exit_code, stdout, stderr)."""
    try:
        code = main(argv)
    except SystemExit as exc:
        code = exc.code
    out = capsys.readouterr()
    return code, out.out, out.err


def _assert_usage_error(code, err):
    assert code == 2
    lines = [line for line in err.splitlines() if line]
    assert len(lines) == 1, f"expected a one-line message, got {err!r}"
    assert lines[0].startswith("repro-inspect:")
    assert "Traceback" not in err


class TestExpressionErrorsExitTwo:
    def test_scan_parse_error(self, bullion_file, capsys):
        code, _out, err = _run(
            ["scan", bullion_file, "--where", "ts >>> 3"], capsys
        )
        _assert_usage_error(code, err)

    def test_scan_unbalanced_paren(self, bullion_file, capsys):
        code, _out, err = _run(
            ["scan", bullion_file, "--where", "(ts > 3"], capsys
        )
        _assert_usage_error(code, err)

    def test_scan_type_mismatch_expression(self, bullion_file, capsys):
        # parses fine, but comparing a numeric column to a string can
        # only be discovered during evaluation — still a usage error
        code, _out, err = _run(
            ["scan", bullion_file, "--where", "ts == 'abc'"], capsys
        )
        _assert_usage_error(code, err)

    def test_catalog_files_parse_error(self, catalog_dir, capsys):
        code, _out, err = _run(
            ["catalog", "files", catalog_dir, "--where", "and and"],
            capsys,
        )
        _assert_usage_error(code, err)

    def test_query_parse_error(self, catalog_dir, capsys):
        code, _out, err = _run(
            ["query", catalog_dir, "--agg", "count", "--where", "v <"],
            capsys,
        )
        _assert_usage_error(code, err)

    def test_query_bad_aggregate(self, catalog_dir, capsys):
        code, _out, err = _run(
            ["query", catalog_dir, "--agg", "median(v)"], capsys
        )
        _assert_usage_error(code, err)

    def test_query_inapplicable_aggregate(self, catalog_dir, capsys):
        code, _out, err = _run(
            ["query", catalog_dir, "--agg", "sum(tag)"], capsys
        )
        _assert_usage_error(code, err)


class TestEnvironmentErrorsExitOne:
    def test_scan_missing_file(self, tmp_path, capsys):
        code, _out, err = _run(
            ["scan", str(tmp_path / "absent"), "--where", "ts > 1"],
            capsys,
        )
        assert code == 1
        assert err.startswith("repro-inspect:")

    def test_query_missing_table(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        code, _out, err = _run(
            ["query", str(missing), "--agg", "count"], capsys
        )
        assert code == 1
        assert "no catalog table" in err
        assert not missing.exists(), "error path created directories"

    def test_query_unknown_column_filter(self, catalog_dir, capsys):
        code, _out, err = _run(
            ["query", catalog_dir, "--agg", "count", "--where",
             "absent > 1"],
            capsys,
        )
        assert code == 1  # well-formed query, wrong for this table
        assert err.startswith("repro-inspect:")


class TestQueryHappyPath:
    def test_global_aggregates(self, catalog_dir, capsys):
        code, out, _err = _run(
            ["query", catalog_dir, "--agg", "count, min(ts), max(ts)"],
            capsys,
        )
        assert code == 0
        assert "count(*)" in out and "200" in out
        assert "manifest-only" in out
        assert "data chunks fetched: 0" in out

    def test_grouped_filtered(self, catalog_dir, capsys):
        code, out, _err = _run(
            ["query", catalog_dir, "--agg", "count,mean(v)",
             "--group-by", "region", "--where", "ts < 150"],
            capsys,
        )
        assert code == 0
        lines = out.splitlines()
        assert lines[0].split() == ["region", "count(*)", "mean(v)"]
        data_rows = [
            l for l in lines[1:] if l.strip() and l.strip()[0].isdigit()
        ]
        assert len(data_rows) == 3  # regions 0, 1, 2

    def test_no_metadata_flag(self, catalog_dir, capsys):
        code, out, _err = _run(
            ["query", catalog_dir, "--agg", "count", "--no-metadata"],
            capsys,
        )
        assert code == 0
        assert "0 file(s) manifest-only" in out

    def test_snapshot_pinning(self, catalog_dir, capsys):
        code, out, _err = _run(
            ["query", catalog_dir, "--agg", "count", "--snapshot", "1"],
            capsys,
        )
        assert code == 0
        assert "100" in out


class TestCodecsSubcommand:
    def test_catalog_listing(self, capsys):
        code, out, _err = _run(["codecs"], capsys)
        assert code == 0
        lines = out.splitlines()
        assert lines[0].split() == ["id", "codec", "kinds"]
        names = {line.split()[1] for line in lines[1:]}
        assert {"huffman", "fastpfor", "gorilla", "fsst"} <= names

    def test_bench_restricted(self, capsys):
        code, out, _err = _run(
            ["codecs", "--bench", "--scale", "0.02", "--repeats", "1",
             "varint", "rle"],
            capsys,
        )
        assert code == 0
        lines = out.splitlines()
        assert "dec MB/s" in lines[0]
        benched = {line.split()[0] for line in lines[1:]}
        assert benched == {"varint", "rle"}

    def test_bench_unknown_codec_is_empty_board(self, capsys):
        code, out, _err = _run(
            ["codecs", "--bench", "--scale", "0.02", "nope"], capsys
        )
        assert code == 0
        assert len(out.splitlines()) == 1  # header only


class TestCatalogSchemaRendering:
    """``catalog files``/``snapshot`` show schema ids + column lists.

    The old rendering printed only the opaque 64-bit layout
    fingerprint; evolved tables now get a per-file ``s<id>`` reference
    and a legend mapping each logged schema to its column list, with
    the current schema starred.
    """

    @pytest.fixture
    def evolved_dir(self, tmp_path):
        from repro.catalog import AddColumn, RenameColumn

        root = tmp_path / "table"
        cat = CatalogTable.create(DirectoryCatalogStore(str(root)))
        cat.append(Table({
            "ts": np.arange(50, dtype=np.int64),
            "v": np.linspace(0, 1, 50),
        }))
        cat.evolve(AddColumn("clicks", "int64"), RenameColumn("v", "score"))
        cat.append(Table({
            "ts": np.arange(50, 100, dtype=np.int64),
            "score": np.linspace(1, 2, 50),
            "clicks": np.arange(50, dtype=np.int64),
        }))
        return str(root)

    def test_files_schema_ids_and_legend(self, evolved_dir, capsys):
        code, out, _err = _run(["catalog", "files", evolved_dir], capsys)
        assert code == 0
        assert "0x" not in out  # no opaque fingerprint hex
        rows = [line for line in out.splitlines() if line.startswith("f-")]
        assert len(rows) == 2
        assert rows[0].split()[-1] == "s0"
        assert rows[1].split()[-1] == "s1"
        assert "schemas:" in out
        assert "  s0: ts:int64, v:double" in out
        assert "* s1: ts:int64, score:double, clicks:int64" in out

    def test_snapshot_manifest_has_legend(self, evolved_dir, capsys):
        code, out, _err = _run(
            ["catalog", "snapshot", evolved_dir, "3"], capsys
        )
        assert code == 0
        assert "schemas:" in out
        assert "* s1: ts:int64, score:double, clicks:int64" in out

    def test_pre_evolution_snapshot_keeps_fingerprint(
        self, evolved_dir, capsys
    ):
        # snapshot 1 predates the schema log: fingerprint is all we have
        code, out, _err = _run(
            ["catalog", "files", evolved_dir, "--snapshot", "1"], capsys
        )
        assert code == 0
        assert "0x" in out
        assert "schemas:" not in out

    def test_legacy_table_unchanged(self, catalog_dir, capsys):
        code, out, _err = _run(["catalog", "files", catalog_dir], capsys)
        assert code == 0
        assert "0x" in out
        assert "schemas:" not in out

    def test_where_resolves_renamed_column(self, evolved_dir, capsys):
        # 'score' was 'v' in the s0 file; its manifest stats live under
        # the stored name, so pruning must resolve through the log.
        code, out, _err = _run(
            ["catalog", "files", evolved_dir, "--where", "score > 1.5"],
            capsys,
        )
        assert code == 0
        rows = [line for line in out.splitlines() if line.startswith("f-")]
        verdicts = {line.split()[-2]: line.split()[-1] for line in rows}
        assert verdicts == {"s0": "PRUNED", "s1": "scan"}


class TestObjectReplayAndCache:
    def _request_count(self, out):
        (line,) = [
            ln for ln in out.splitlines() if ln.startswith("requests:")
        ]
        return int(line.split()[1])

    def test_object_replay_prints_request_log(self, bullion_file, capsys):
        code, out, _err = _run(
            ["scan", bullion_file, "--backend", "object"], capsys
        )
        assert code == 0
        assert "object-store replay" in out
        assert "coalescing gap=0" in out
        assert "GET" in out and "modelled time" in out
        # a request table row: index, op, offset, bytes, cost
        rows = [ln for ln in out.splitlines() if " GET " in ln]
        assert rows and all("ms" in r for r in rows)

    def test_no_coalesce_issues_more_requests(self, bullion_file, capsys):
        code, out, _err = _run(
            ["scan", bullion_file, "--backend", "object"], capsys
        )
        assert code == 0
        coalesced = self._request_count(out)
        code, out, _err = _run(
            ["scan", bullion_file, "--backend", "object", "--no-coalesce"],
            capsys,
        )
        assert code == 0
        assert "coalescing off" in out
        assert self._request_count(out) > coalesced

    def test_object_replay_accepts_where(self, bullion_file, capsys):
        code, out, _err = _run(
            ["scan", bullion_file, "--backend", "object",
             "--where", "ts > 49", "--columns", "v"],
            capsys,
        )
        assert code == 0
        assert "50 rows" in out

    def test_file_backend_still_requires_where(self, bullion_file, capsys):
        code, _out, err = _run(["scan", bullion_file], capsys)
        assert code == 2
        assert "--where is required" in err

    def test_cache_subcommand_renders_tiers(self, capsys):
        code, out, _err = _run(["cache"], capsys)
        assert code == 0
        assert "tiered chunk cache 'process'" in out
        assert "memory" in out and "disk" in out
        assert "single-flight waits" in out
