"""Transactional catalog: commits, races, time travel, pinned reads."""

import threading

import numpy as np
import pytest

from repro.catalog import (
    CatalogTable,
    CommitConflict,
    DirectoryCatalogStore,
    MemoryCatalogStore,
)
from repro.core import (
    BullionReader,
    LoaderOptions,
    Predicate,
    Table,
    WriterOptions,
)


def _table(start, n, seed=None):
    rng = np.random.default_rng(0 if seed is None else seed)
    return Table(
        {
            "id": np.arange(start, start + n, dtype=np.int64),
            "score": rng.random(n).astype(np.float32),
        }
    )


def _opts():
    return WriterOptions(rows_per_page=64, rows_per_group=256)


class FakeClock:
    """Deterministic ms clock so as_of() tests are exact."""

    def __init__(self, start=1_000):
        self.now = start

    def __call__(self):
        return self.now


@pytest.fixture
def table():
    return CatalogTable.create(MemoryCatalogStore(), clock=FakeClock())


# -- basics -----------------------------------------------------------------

def test_create_and_append(table):
    assert table.current_snapshot().snapshot_id == 0
    snap = table.append(_table(0, 500), options=_opts())
    assert snap.snapshot_id == 1
    assert snap.parent_id == 0
    assert snap.operation == "append"
    assert snap.live_rows == 500
    assert snap.summary["rows_added"] == 500
    got = table.read(["id"])
    assert np.array_equal(got.column("id"), np.arange(500))


def test_create_twice_rejected():
    store = MemoryCatalogStore()
    CatalogTable.create(store)
    with pytest.raises(FileExistsError):
        CatalogTable.create(store)


def test_open_empty_store_rejected():
    with pytest.raises(FileNotFoundError):
        CatalogTable(MemoryCatalogStore())


def test_manifest_carries_footer_stats(table):
    table.append(_table(0, 300), options=_opts())
    table.delete(Predicate("id", max_value=49))
    entry = table.current_snapshot().files[0]
    storage = table.store.open_data(entry.file_id)
    reader = BullionReader(storage)
    assert entry.row_count == reader.num_rows == 300
    assert entry.deleted_count == reader.footer.deleted_count() == 50
    assert entry.live_rows == reader.live_rows == 250
    assert entry.byte_size == storage.size
    assert entry.schema_fingerprint == reader.schema_fingerprint()


def test_schema_fingerprint_mismatch_rejected(table):
    table.append(_table(0, 100), options=_opts())
    other = Table({"clicks": np.arange(10, dtype=np.int64)})
    with pytest.raises(ValueError, match="fingerprint"):
        table.append(other, options=_opts())


def test_empty_transaction_rejected(table):
    with pytest.raises(ValueError, match="empty transaction"):
        table.transaction().commit()


def test_no_match_delete_and_compact_stage_nothing(table):
    table.append(_table(0, 100), options=_opts())
    txn = table.transaction()
    assert txn.delete(Predicate("id", min_value=10**9)) == 0
    assert txn.compact(min_deleted_fraction=0.9).bytes_in == 0
    with pytest.raises(ValueError, match="empty transaction"):
        txn.commit()  # nothing staged: no no-op snapshot in the log
    txn.abort()
    # in a multi-op transaction the empty mutations leave no trace
    txn = table.transaction()
    txn.append(_table(100, 100), options=_opts())
    assert txn.delete(Predicate("id", min_value=10**9)) == 0
    snap = txn.commit()
    assert snap.operation == "append"
    assert "rows_deleted" not in snap.summary


def test_add_shards_commits_atomically(table):
    snap = table.add_shards(_table(0, 1000), rows_per_shard=256,
                            options=_opts())
    assert len(snap.files) == 4
    assert snap.operation == "add-shards"
    assert snap.summary["shards_added"] == 4
    got = table.read(["id"], batch_size=100)
    assert np.array_equal(got.column("id"), np.arange(1000))


# -- concurrency ------------------------------------------------------------

def test_two_racing_writers_both_commit(table):
    """Two transactions from the same base: the loser replays, nothing
    is lost."""
    t1 = table.transaction()
    t2 = table.transaction()
    t1.append(_table(0, 100), options=_opts())
    t2.append(_table(100, 100), options=_opts())
    s1 = t1.commit()
    s2 = t2.commit()  # detects moved HEAD, replays on top
    assert s1.snapshot_id == 1
    assert s2.snapshot_id == 2
    assert table.stats.conflicts >= 1
    assert s2.live_rows == 200
    assert set(np.asarray(table.read(["id"]).column("id"))) == set(range(200))


def test_threaded_appends_no_lost_updates(table):
    n_threads, commits_each, rows = 4, 5, 50
    barrier = threading.Barrier(n_threads)
    errors = []

    def writer(k):
        try:
            barrier.wait()
            for i in range(commits_each):
                start = (k * commits_each + i) * rows
                table.append(_table(start, rows), options=_opts())
        except Exception as exc:  # surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(k,)) for k in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    head = table.current_snapshot()
    total = n_threads * commits_each
    assert head.snapshot_id == total  # every commit landed, no gaps
    assert head.live_rows == total * rows
    ids = np.sort(np.asarray(table.read(["id"]).column("id")))
    assert np.array_equal(ids, np.arange(total * rows))
    # every committed snapshot references only fully-written files
    for snap in table.history():
        for f in snap.files:
            assert BullionReader(table.store.open_data(f.file_id)).verify()


def test_delete_aborts_when_files_appended_concurrently(table):
    table.append(_table(0, 200), options=_opts())
    txn = table.transaction()
    assert txn.delete(Predicate("id", max_value=99)) == 100
    # a racing append commits rows the delete's predicate never saw;
    # replaying would leave them live, so the delete must abort
    table.append(_table(0, 50), options=_opts())
    with pytest.raises(CommitConflict, match="added concurrently"):
        txn.commit()
    assert table.current_snapshot().live_rows == 250


def test_conflicting_replace_aborts_and_cleans_up(table):
    table.append(_table(0, 500), options=_opts())
    table.delete(Predicate("id", max_value=99))
    t1 = table.transaction()
    t2 = table.transaction()
    t1.compact()
    t2.compact()
    t1.commit()
    t2_staged = set(t2._staged_ids)
    assert t2_staged <= set(table.store.list_data())
    with pytest.raises(CommitConflict):
        t2.commit()  # its input file was compacted away by t1
    assert table.stats.aborts == 1
    # t2's staged output was deleted, nothing leaked
    assert not (t2_staged & set(table.store.list_data()))


def test_abort_deletes_staged_files(table):
    txn = table.transaction()
    txn.append(_table(0, 100), options=_opts())
    staged = set(table.store.list_data())
    assert staged
    txn.abort()
    assert table.store.list_data() == []
    with pytest.raises(RuntimeError):
        txn.commit()


def test_compacting_fully_deleted_file_drops_it(table):
    table.append(_table(0, 200), options=_opts())
    table.append(_table(200, 200), options=_opts())
    table.delete(Predicate("id", max_value=199))  # first file 100% dead
    snap, report = table.compact()
    assert len(snap.files) == 1  # no empty rewrite committed
    assert report.rows_in == 200 and report.rows_out == 0
    assert all(f.row_count > 0 for f in snap.files)
    got = np.asarray(table.read(["id"]).column("id"))
    assert np.array_equal(got, np.arange(200, 400))


# -- time travel ------------------------------------------------------------

def test_scan_pinned_snapshot_is_immutable_across_delete_and_compact(table):
    table.append(_table(0, 400), options=_opts())
    pinned_id = table.current_snapshot().snapshot_id
    raw_before = {
        f.file_id: table.store.open_data(f.file_id).raw_bytes()
        for f in table.current_snapshot().files
    }
    before = table.read(["id", "score"], snapshot_id=pinned_id)

    table.delete(Predicate("id", min_value=100, max_value=299))
    table.compact()

    # the pinned snapshot's files were never touched: byte-identical
    for fid, raw in raw_before.items():
        assert table.store.open_data(fid).raw_bytes() == raw
    after = table.read(["id", "score"], snapshot_id=pinned_id)
    assert after.equals(before)
    # while HEAD sees the deletion
    head_ids = np.asarray(table.read(["id"]).column("id"))
    assert len(head_ids) == 200
    assert not ((head_ids >= 100) & (head_ids < 300)).any()


def test_as_of_time_travel():
    clock = FakeClock(start=1_000)
    table = CatalogTable.create(MemoryCatalogStore(), clock=clock)
    clock.now = 2_000
    table.append(_table(0, 100), options=_opts())
    clock.now = 3_000
    table.append(_table(100, 100), options=_opts())
    assert table.as_of(2_500).live_rows == 100
    assert table.as_of(3_000).live_rows == 200
    assert table.as_of(10_000).live_rows == 200
    with pytest.raises(LookupError):
        table.as_of(500)
    got = table.read(["id"], as_of=2_500)
    assert np.array_equal(got.column("id"), np.arange(100))


def test_timestamps_strictly_increase_under_frozen_clock(table):
    for i in range(3):
        table.append(_table(i * 10, 10), options=_opts())
    stamps = [s.timestamp_ms for s in table.history()]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == len(stamps)


# -- pinned loaders ---------------------------------------------------------

def test_loader_reproducible_at_pinned_snapshot_while_ingest_continues(table):
    table.append(_table(0, 600), options=_opts())
    with table.pin() as pinned:
        loader = pinned.loader(
            ["id"],
            LoaderOptions(batch_size=128, shuffle_row_groups=True, seed=3),
        )
        epoch1 = np.concatenate(
            [np.asarray(b.column("id")) for b in loader]
        )
        # ingest keeps committing between epochs
        table.append(_table(600, 300), options=_opts())
        table.delete(Predicate("id", max_value=99))
        epoch2 = np.concatenate(
            [np.asarray(b.column("id")) for b in loader]
        )
    assert np.array_equal(np.sort(epoch1), np.arange(600))
    assert np.array_equal(np.sort(epoch2), np.arange(600))
    # HEAD sees both the ingest and the delete
    assert table.current_snapshot().live_rows == 800


def test_scan_batches_span_file_boundaries(table):
    for i in range(3):
        table.append(_table(i * 100, 100), options=_opts())
    batches = list(table.scan(["id"], batch_size=70))
    assert [b.num_rows for b in batches] == [70, 70, 70, 70, 20]
    assert np.array_equal(
        np.concatenate([np.asarray(b.column("id")) for b in batches]),
        np.arange(300),
    )


def test_released_pin_rejects_reads(table):
    table.append(_table(0, 10), options=_opts())
    pinned = table.pin()
    pinned.release()
    with pytest.raises(RuntimeError):
        pinned.readers()


# -- directory store --------------------------------------------------------

def test_directory_store_roundtrip(tmp_path):
    root = str(tmp_path / "tbl")
    table = CatalogTable.create(DirectoryCatalogStore(root))
    table.append(_table(0, 500), options=_opts())
    table.delete(Predicate("id", max_value=99))
    table.compact()
    got = np.asarray(table.read(["id"]).column("id"))
    assert np.array_equal(got, np.arange(100, 500))
    # a second handle over the same directory sees the same log
    reopened = CatalogTable(DirectoryCatalogStore(root))
    assert [s.snapshot_id for s in reopened.history()] == [0, 1, 2, 3]
    assert np.array_equal(
        np.asarray(reopened.read(["id"]).column("id")), got
    )


def test_directory_store_reopen_can_append(tmp_path):
    """A fresh handle's file-id counter must skip ids already on disk."""
    root = str(tmp_path / "tbl")
    table = CatalogTable.create(DirectoryCatalogStore(root))
    table.append(_table(0, 100), options=_opts())
    reopened = CatalogTable(DirectoryCatalogStore(root))
    reopened.append(_table(100, 100), options=_opts())
    got = np.sort(np.asarray(reopened.read(["id"]).column("id")))
    assert np.array_equal(got, np.arange(200))


def test_direct_staging_path_commits(table):
    """new_data_file()+add_file() alone is a committable transaction."""
    from repro.core import BullionWriter

    txn = table.transaction()
    file_id, storage = txn.new_data_file()
    BullionWriter(storage, options=_opts()).write(_table(0, 100))
    txn.add_file(storage, file_id)
    snap = txn.commit()
    assert snap.operation == "add-files"
    assert snap.live_rows == 100


def test_directory_store_commit_cas(tmp_path):
    store = DirectoryCatalogStore(str(tmp_path / "tbl"))
    assert store.put_metadata("snap-0000000001.json", b"first")
    assert not store.put_metadata("snap-0000000001.json", b"second")
    assert store.read_metadata("snap-0000000001.json") == b"first"


# -- CLI --------------------------------------------------------------------

def test_inspect_catalog_cli(tmp_path, capsys):
    from repro.tools.inspect import main

    root = str(tmp_path / "tbl")
    table = CatalogTable.create(DirectoryCatalogStore(root))
    table.append(_table(0, 300), options=_opts())
    table.delete(Predicate("id", max_value=49))

    assert main(["catalog", "log", root]) == 0
    out = capsys.readouterr().out
    assert "append" in out and "delete" in out and "rows_deleted=50" in out

    assert main(["catalog", "snapshot", root, "2"]) == 0
    out = capsys.readouterr().out
    assert "operation: delete" in out and "250 live" in out

    assert main(["catalog", "files", root]) == 0
    out = capsys.readouterr().out
    assert "data files of snapshot 2" in out
