"""Tests for the cascading encoding selector (§2.6)."""

import numpy as np
import pytest

from repro.cascading import (
    BALANCED,
    COLD_STORAGE,
    CostWeights,
    choose_encoding,
    collect_stats,
    score_candidate,
    select_encoding,
    take_sample,
)
from repro.encodings import Kind, Trivial, decode_blob, encode_blob

RNG = np.random.default_rng(11)


class TestStats:
    def test_int_stats(self):
        data = np.repeat(np.arange(10, dtype=np.int64), 100)
        s = collect_stats(data)
        assert s.kind == Kind.INT
        assert s.n_unique == 10
        assert s.avg_run_length > 50
        assert s.sorted_fraction == 1.0
        assert s.non_negative

    def test_negative_detected(self):
        s = collect_stats(np.array([-5, 3], dtype=np.int64))
        assert not s.non_negative

    def test_float_decimal_fraction(self):
        decs = np.round(RNG.normal(size=500), 2)
        gauss = RNG.normal(size=500)
        assert collect_stats(decs).decimal_fraction > 0.95
        assert collect_stats(gauss).decimal_fraction < 0.05

    def test_bool_stats(self):
        data = RNG.random(1000) < 0.1
        s = collect_stats(data)
        assert s.kind == Kind.BOOL
        assert 0.0 < s.true_fraction < 0.25

    def test_bytes_stats(self):
        data = [b"a", b"a", b"b"] * 100
        s = collect_stats(data)
        assert s.n_unique == 2
        assert s.avg_byte_length == 1.0

    def test_list_window_overlap(self):
        window = list(RNG.integers(0, 1000, 64))
        rows = []
        for _ in range(20):
            window = ([int(RNG.integers(0, 1000))] + window)[:64]
            rows.append(np.array(window, dtype=np.int64))
        s = collect_stats(rows)
        assert s.kind == Kind.LIST_INT
        assert s.window_overlap > 0.8

    def test_sample_preserves_head_structure(self):
        data = np.arange(100000, dtype=np.int64)
        sample = take_sample(data, limit=1000)
        assert len(sample) <= 1000
        assert np.array_equal(sample[:500], np.arange(500))


class TestSelector:
    def test_constant_column(self):
        r = select_encoding(np.full(5000, 9, dtype=np.int64))
        assert r.description == "constant"

    def test_winner_always_roundtrips(self):
        cases = [
            RNG.integers(-(10**6), 10**6, 2000).astype(np.int64),
            np.sort(RNG.integers(0, 10**9, 2000)).astype(np.int64),
            np.round(RNG.normal(size=1500), 3),
            RNG.normal(size=1500),
            [f"u{i % 50}@x.com".encode() for i in range(1000)],
            RNG.random(3000) < 0.01,
        ]
        for data in cases:
            r = select_encoding(data)
            out = decode_blob(encode_blob(data, r.encoding))
            if isinstance(data, np.ndarray):
                assert np.array_equal(np.asarray(out, dtype=data.dtype), data)
            else:
                assert list(out) == list(data)

    def test_sliding_windows_pick_sparse_delta(self):
        from repro.workloads.sparse import (
            SlidingWindowConfig,
            generate_click_sequences,
        )

        rows, _ = generate_click_sequences(
            SlidingWindowConfig(n_users=5, events_per_user=30, window_size=128)
        )
        # under size-dominant weights the structure-aware scheme wins
        r = select_encoding(rows, weights=COLD_STORAGE)
        assert "sparse_list_delta" in r.description
        # and it is always in the candidate pool when overlap is high
        default = select_encoding(rows)
        assert any(
            "sparse_list_delta" in s.description for s in default.scores
        )

    def test_depth_zero_excludes_compositions(self):
        data = np.repeat(RNG.integers(0, 4, 100), 50).astype(np.int64)
        r = select_encoding(data, max_depth=0)
        descriptions = {s.description for s in r.scores}
        assert all("rle(" not in d and "chunked" not in d for d in descriptions)

    def test_depth_increases_candidate_pool(self):
        data = np.repeat(RNG.integers(0, 4, 100), 50).astype(np.int64)
        n0 = len(select_encoding(data, max_depth=0).scores)
        n2 = len(select_encoding(data, max_depth=2).scores)
        assert n2 > n0

    def test_scores_sorted_by_objective(self):
        r = select_encoding(RNG.integers(0, 100, 2000).astype(np.int64))
        objectives = [s.objective for s in r.scores]
        assert objectives == sorted(objectives)

    def test_cold_storage_weights_prefer_smaller(self):
        data = np.resize(
            np.repeat(RNG.integers(0, 1000, 50), RNG.integers(1, 20, 50)), 4000
        ).astype(np.int64)
        cold = select_encoding(data, weights=COLD_STORAGE)
        # under cold weights the winner's size must be minimal-ish
        sizes = [s.encoded_bytes for s in cold.scores]
        assert cold.best.encoded_bytes <= np.percentile(sizes, 30)


class TestObjective:
    def test_score_none_on_inapplicable(self):
        from repro.encodings import Varint

        assert (
            score_candidate(
                np.array([-1], dtype=np.int64), Varint(), BALANCED
            )
            is None
        )

    def test_weights_change_ranking_direction(self):
        w_size = CostWeights(size=100.0, read=0.0, write=0.0)
        w_read = CostWeights(size=0.0, read=100.0, write=0.0)
        data = RNG.integers(0, 50, 4000).astype(np.int64)
        by_size = select_encoding(data, weights=w_size)
        assert by_size.best.encoded_bytes == min(
            s.encoded_bytes for s in by_size.scores
        )
        by_read = select_encoding(data, weights=w_read)
        assert by_read.best.read_seconds <= np.median(
            [s.read_seconds for s in by_read.scores]
        )

    def test_choose_encoding_alias(self):
        r = choose_encoding(np.arange(100, dtype=np.int64))
        assert isinstance(r.encoding, object)
        assert r.encoding is not None or isinstance(r.encoding, Trivial)
