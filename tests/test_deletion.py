"""Deletion-compliance tests (§2.1): maskers, levels, Merkle updates."""

import numpy as np
import pytest

from repro.core import (
    BullionReader,
    BullionWriter,
    LEVEL_DELETION_VECTOR,
    LEVEL_IN_PLACE,
    LEVEL_PLAIN,
    Table,
    WriterOptions,
    delete_rows,
    rewrite_without_rows,
)
from repro.core.deletion import MaskError, mask_page_payload
from repro.encodings import (
    Dictionary,
    FixedBitWidth,
    RLE,
    SparseBool,
    Trivial,
    Varint,
    decode_blob,
    encode_blob,
)
from repro.iosim import SimulatedStorage


class TestMaskers:
    """Each §2.1 masking case: size never grows, data is destroyed."""

    def test_trivial_int_scrub(self):
        data = np.array([11, 22, 33, 44], dtype=np.int64)
        blob = encode_blob(data, Trivial())
        res = mask_page_payload(blob, np.array([1, 3]))
        assert len(res.payload) == len(blob)
        assert list(decode_blob(res.payload)) == [11, 0, 33, 0]

    def test_trivial_float_scrub(self):
        data = np.array([1.5, 2.5, 3.5], dtype=np.float64)
        blob = encode_blob(data, Trivial())
        res = mask_page_payload(blob, np.array([0]))
        out = decode_blob(res.payload)
        assert out[0] == 0.0 and out[1] == 2.5

    def test_trivial_bytes_scrub_keeps_layout(self):
        data = [b"secret", b"keep", b"private"]
        blob = encode_blob(data, Trivial())
        res = mask_page_payload(blob, np.array([0, 2]))
        assert len(res.payload) == len(blob)
        out = decode_blob(res.payload)
        assert out[1] == b"keep"
        assert out[0] == b"\x00" * 6  # content gone, length preserved
        assert out[2] == b"\x00" * 7

    def test_bitpack_scrub_in_place(self):
        data = np.array([5, 6, 7, 8], dtype=np.int64)
        blob = encode_blob(data, FixedBitWidth())
        res = mask_page_payload(blob, np.array([2]))
        assert len(res.payload) == len(blob)
        out = decode_blob(res.payload)
        assert out[2] == 5  # masked slot decodes to the page base
        assert list(out[[0, 1, 3]]) == [5, 6, 8]

    def test_varint_scrub_preserves_framing(self):
        """The paper's MSB trick: stream length and alignment survive."""
        data = np.array([1, 300, 70000, 5], dtype=np.int64)
        blob = encode_blob(data, Varint())
        res = mask_page_payload(blob, np.array([1, 2]))
        assert len(res.payload) == len(blob)
        out = decode_blob(res.payload)
        assert list(out) == [1, 0, 0, 5]

    def test_dictionary_scrub_via_mask_entry(self):
        data = np.array([100, 200, 100, 300], dtype=np.int64)
        blob = encode_blob(data, Dictionary())
        res = mask_page_payload(blob, np.array([0, 3]))
        assert len(res.payload) == len(blob)
        out = decode_blob(res.payload)
        assert list(out) == [0, 200, 100, 0]

    def test_rle_drop_and_realign(self):
        """The paper's 222666663 example: drop the third '6'."""
        data = np.array([2, 2, 2, 6, 6, 6, 6, 6, 3], dtype=np.int64)
        blob = encode_blob(data, RLE())
        res = mask_page_payload(blob, np.array([5]))
        assert len(res.payload) <= len(blob)
        assert res.compacted
        out = decode_blob(res.payload)
        assert list(out) == [2, 2, 2, 6, 6, 6, 6, 3]

    def test_bool_scrub(self):
        data = np.array([True, False, True, True], dtype=np.bool_)
        blob = encode_blob(data, SparseBool())
        res = mask_page_payload(blob, np.array([0]))
        assert len(res.payload) <= len(blob)
        out = decode_blob(res.payload)
        assert list(out) == [False, False, True, True]

    def test_generic_masker_delta_family(self):
        from repro.encodings import Delta

        data = np.cumsum(np.ones(100, dtype=np.int64)) * 10
        blob = encode_blob(data, Delta())
        res = mask_page_payload(blob, np.array([50]))
        assert len(res.payload) <= len(blob)
        out = decode_blob(res.payload)
        assert out[50] == out[49]  # neighbour fill => delta 0

    def test_list_page_scrub_empties_rows(self):
        from repro.encodings import ListEncoding

        data = [np.array([1, 2], dtype=np.int64) for _ in range(10)]
        blob = encode_blob(data, ListEncoding())
        res = mask_page_payload(blob, np.array([3]))
        out = decode_blob(res.payload)
        assert len(out[3]) == 0
        assert np.array_equal(out[4], [1, 2])


def _make_file(level=LEVEL_IN_PLACE, n=2000, **encodings):
    rng = np.random.default_rng(7)
    table = Table(
        {
            "ids": rng.integers(0, 10**6, n).astype(np.int64),
            "score": rng.normal(size=n),
            "tag": [f"t{i % 9}".encode() for i in range(n)],
        }
    )
    dev = SimulatedStorage()
    BullionWriter(
        dev,
        options=WriterOptions(
            rows_per_page=250,
            rows_per_group=500,
            compliance_level=level,
            encodings=dict(encodings),
        ),
    ).write(table)
    return dev, table


class TestDeleteRows:
    def test_level1_vector_only(self):
        dev, table = _make_file(level=LEVEL_DELETION_VECTOR)
        report = delete_rows(dev, [3, 10, 999], level=LEVEL_DELETION_VECTOR)
        assert report.pages_rewritten == 0
        reader = BullionReader(dev)
        assert reader.footer.deleted_count() == 3
        out = reader.project(["ids"])
        assert out.num_rows == table.num_rows - 3
        # level 1 leaves the bytes in place (the compliance gap)
        raw = reader.project(["ids"], drop_deleted=False)
        assert np.array_equal(raw.column("ids"), table.column("ids"))

    def test_level2_scrubs_and_filters(self):
        dev, table = _make_file()
        victims = [0, 500, 1500, 1999]
        report = delete_rows(dev, victims)
        assert report.pages_rewritten > 0
        reader = BullionReader(dev)
        out = reader.project(["ids", "score", "tag"])
        keep = np.ones(2000, dtype=bool)
        keep[victims] = False
        assert out.equals(table.take_mask(keep))
        # physical scrub check: raw read shows destroyed values
        raw = reader.project(["ids"], drop_deleted=False)
        for v in victims:
            assert raw.column("ids")[v] != table.column("ids")[v] or (
                table.column("ids")[v] == raw.column("ids")[v] == 0
            )

    def test_merkle_still_valid_after_delete(self):
        dev, _table = _make_file()
        delete_rows(dev, [7, 8, 9, 1000])
        assert BullionReader(dev).verify()

    def test_cumulative_deletes(self):
        dev, table = _make_file()
        delete_rows(dev, [1, 2, 3])
        delete_rows(dev, [3, 4, 5])  # overlap is idempotent
        reader = BullionReader(dev)
        assert reader.footer.deleted_count() == 5
        out = reader.project(["ids"])
        assert out.num_rows == 1995
        assert BullionReader(dev).verify()

    def test_rle_page_cumulative_deletes(self):
        rng = np.random.default_rng(8)
        table = Table(
            {
                "r": np.resize(
                    np.repeat(rng.integers(0, 4, 50), rng.integers(5, 30, 50)),
                    1000,
                ).astype(np.int64)
            }
        )
        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=500, rows_per_group=500, encodings={"r": RLE()}
            ),
        ).write(table)
        delete_rows(dev, [10, 20, 30])
        delete_rows(dev, [15, 600])
        out = BullionReader(dev).project(["r"])
        keep = np.ones(1000, dtype=bool)
        keep[[10, 20, 30, 15, 600]] = False
        assert np.array_equal(out.column("r"), table.column("r")[keep])

    def test_level0_requires_rewrite(self):
        dev, _table = _make_file(level=LEVEL_PLAIN)
        with pytest.raises(ValueError, match="rewrite"):
            delete_rows(dev, [1])

    def test_out_of_range_rejected(self):
        dev, _table = _make_file()
        with pytest.raises(ValueError, match="range"):
            delete_rows(dev, [2000])

    def test_clustered_delete_io_factor(self):
        """The §2.1 claim: clustered (per-user) deletes touch few pages,
        so in-place I/O beats a full rewrite by a large factor."""
        dev, table = _make_file(n=20000)
        victims = range(100, 140)  # one user's contiguous rows
        report = delete_rows(dev, victims)
        target = SimulatedStorage()
        baseline = rewrite_without_rows(dev, victims, target)
        factor = baseline.bytes_written / max(1, report.bytes_written)
        assert factor > 10

    def test_rewrite_baseline_correct(self):
        dev, table = _make_file(n=500)
        target = SimulatedStorage()
        rewrite_without_rows(dev, [5, 6], target)
        out = BullionReader(target).project(["ids", "score", "tag"])
        keep = np.ones(500, dtype=bool)
        keep[[5, 6]] = False
        assert out.equals(table.take_mask(keep))


class TestMaskErrorFallback:
    def test_unmaskable_page_falls_back_to_vector(self):
        from repro.encodings import Gorilla

        rng = np.random.default_rng(9)
        table = Table({"g": rng.normal(size=400)})
        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=200,
                rows_per_group=200,
                encodings={"g": Gorilla()},
            ),
        ).write(table)
        report = delete_rows(dev, [17])
        # gorilla may or may not re-encode smaller; either way reads filter
        out = BullionReader(dev).project(["g"])
        assert out.num_rows == 399
        assert report.pages_rewritten + report.pages_vector_only >= 1
