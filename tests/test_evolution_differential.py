"""Differential harness: randomized table histories vs a brute-force model.

Schema evolution multiplies the catalog's state space: every
historical snapshot must keep replaying correctly under time travel,
all three pushdown layers, and both query answer paths, while files
written under different schema versions coexist in one snapshot. This
harness exhausts those interactions the same way the PR-5 query
harness did (which caught the 2**53 and NaN-pruning bug classes):

* each seeded case runs a randomized history of
  append / add_shards / upsert / evolve / delete / compact / expire /
  racing-commit steps against a real catalog AND a brute-force
  in-memory model (rows keyed by stable field id, so renames and
  widenings are free on the model side);
* after the history, **every retained snapshot** is pinned and checked:
  full scans must match the model bit for bit (sorted by the ``id``
  key; floats compared with NaN-aware exact equality — widening and
  typed-null fills are exact by construction), ``as_of`` time travel
  must resolve each recorded timestamp to the right snapshot, and
  randomized aggregation plans must match brute force with metadata
  fast paths on *and* forced off (counts/extrema/int sums bit-exact,
  float sums/means at 1e-9 rtol).

Float filter literals are always exactly representable in float32 so
that stored-domain (f32/f16/bf16) and widened-domain (f64) comparisons
provably agree — the same contract the resolver guarantees by always
evaluating filters over widened values.
"""

import copy
import math

import numpy as np
import pytest

from repro.catalog import (
    AddColumn,
    CatalogTable,
    CommitConflict,
    DropColumn,
    MemoryCatalogStore,
    RenameColumn,
    WidenColumn,
)
from repro.core import Table, WriterOptions
from repro.core.schema import Field, LogicalType, Schema
from repro.expr import And, Comparison, Expr, In, Not, Or, col
from repro.quantization import FloatFormat, dequantize, quantize

# ---------------------------------------------------------------------------
# the model: rows keyed by stable field id
# ---------------------------------------------------------------------------

#: type tag -> (writer type name, widening successors)
WIDEN_NEXT = {
    "i16": ["i32", "i64"],
    "i32": ["i64"],
    "i64": [],
    "f16": ["f32", "f64"],
    "bf16": ["f32", "f64"],
    "f32": ["f64"],
    "f64": [],
    "bool": [],
    "str": [],
}
TYPE_NAME = {
    "i64": "int64",
    "i32": "int32",
    "i16": "int16",
    "f64": "double",
    "f32": "float",
    "f16": "float16",
    "bf16": "bfloat16",
    "bool": "bool",
    "str": "string",
}
INT_TAGS = ("i64", "i32", "i16")
FLOAT_TAGS = ("f64", "f32", "f16", "bf16")
ADDABLE = ("i64", "i32", "i16", "f64", "f32", "f16", "bf16", "bool", "str")

FILL = {
    "i64": 0, "i32": 0, "i16": 0,
    "f64": math.nan, "f32": math.nan, "f16": math.nan, "bf16": math.nan,
    "bool": False, "str": b"",
}


class ModelColumn:
    def __init__(self, field_id, name, tag):
        self.field_id = field_id
        self.name = name
        self.tag = tag


class Model:
    """Brute-force table: list of {field_id: python value} rows plus an
    ordered schema. Values are stored in their *exact* widened form
    (python int / float64-representable float / bool / bytes), so
    widening a column is a schema-only change."""

    def __init__(self, columns):
        self.columns = columns  # list[ModelColumn]; columns[0] is "id"
        self.rows = []  # list[dict[int, value]]
        self.next_field_id = max(c.field_id for c in columns) + 1

    def clone(self):
        m = Model([ModelColumn(c.field_id, c.name, c.tag)
                   for c in self.columns])
        m.rows = copy.deepcopy(self.rows)
        m.next_field_id = self.next_field_id
        return m

    def column(self, name):
        for c in self.columns:
            if c.name == name:
                return c
        raise KeyError(name)

    def view(self):
        """Materialize current-schema rows with typed-null fills."""
        out = []
        for row in self.rows:
            out.append({
                c.name: row.get(c.field_id, FILL[c.tag])
                for c in self.columns
            })
        return out


def _storage_value(rng, tag):
    """(model value, ) for one cell of a fresh column/row."""
    if tag == "i64":
        v = int(rng.integers(-(10**9), 10**9))
        if rng.random() < 0.03:
            v = 2**53 + int(rng.integers(-3, 4))
        return v
    if tag == "i32":
        return int(rng.integers(-50_000, 50_000))
    if tag == "i16":
        return int(rng.integers(-300, 300))
    if tag == "f64":
        r = rng.random()
        if r < 0.04:
            return math.nan
        if r < 0.06:
            return math.inf if r < 0.05 else -math.inf
        return float(rng.normal())
    if tag == "f32":
        if rng.random() < 0.04:
            return math.nan
        return float(np.float32(rng.normal()))
    if tag == "f16":
        stored = quantize(
            np.array([rng.normal()], dtype=np.float32), FloatFormat.FP16
        )
        return float(dequantize(stored, FloatFormat.FP16)[0])
    if tag == "bf16":
        stored = quantize(
            np.array([rng.normal() * 4], dtype=np.float32), FloatFormat.BF16
        )
        return float(dequantize(stored, FloatFormat.BF16)[0])
    if tag == "bool":
        return bool(rng.random() < 0.4)
    return f"t{int(rng.integers(0, 4))}".encode()


def _schema_of(model) -> Schema:
    """Explicit writer schema from the model (dtype inference cannot
    recover payload-bit types like bfloat16 from raw uint16 arrays)."""
    return Schema([
        Field(c.name, LogicalType.parse(TYPE_NAME[c.tag]))
        for c in model.columns
    ])


def _write_arrays(model, rows):
    """Current-schema storage arrays for ``rows`` (model-view dicts)."""
    cols = {}
    for c in model.columns:
        vals = [r[c.name] for r in rows]
        if c.tag in INT_TAGS:
            dtype = {"i64": np.int64, "i32": np.int32, "i16": np.int16}[c.tag]
            cols[c.name] = np.array(vals, dtype=dtype)
        elif c.tag == "f64":
            cols[c.name] = np.array(vals, dtype=np.float64)
        elif c.tag == "f32":
            cols[c.name] = np.array(vals, dtype=np.float32)
        elif c.tag == "f16":
            cols[c.name] = quantize(
                np.array(vals, dtype=np.float32), FloatFormat.FP16
            )
        elif c.tag == "bf16":
            cols[c.name] = quantize(
                np.array(vals, dtype=np.float32), FloatFormat.BF16
            )
        elif c.tag == "bool":
            cols[c.name] = np.array(vals, dtype=np.bool_)
        else:
            cols[c.name] = list(vals)
    return Table(cols)


def _new_rows(rng, model, keys):
    rows = []
    for k in keys:
        row = {"id": int(k)}
        for c in model.columns[1:]:
            row[c.name] = _storage_value(rng, c.tag)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# model-side expression evaluation (IEEE semantics, like numpy)
# ---------------------------------------------------------------------------

def _eval_leaf(op, a, b):
    if isinstance(a, float) and math.isnan(a):
        # numpy elementwise: every comparison with NaN is False except !=
        return op == "!="
    if op == "==":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    return a >= b


def _eval_model(expr, row):
    if isinstance(expr, Comparison):
        return _eval_leaf(expr.op, row[expr.column], expr.value)
    if isinstance(expr, In):
        v = row[expr.column]
        if isinstance(v, float) and math.isnan(v):
            return False
        return v in expr.values
    if isinstance(expr, And):
        return all(_eval_model(a, row) for a in expr.args)
    if isinstance(expr, Or):
        return any(_eval_model(a, row) for a in expr.args)
    if isinstance(expr, Not):
        return not _eval_model(expr.arg, row)
    raise TypeError(expr)


def _f32_exact(x) -> float:
    return float(np.float32(x))


def _random_leaf(rng, model) -> Expr:
    c = model.columns[int(rng.integers(0, len(model.columns)))]
    if c.tag in INT_TAGS or c.name == "id":
        lo = {"i64": 10**9, "i32": 50_000, "i16": 300}.get(c.tag, 10**9)
        pivot = int(rng.integers(-lo // 2, lo // 2))
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return Comparison(str(op), c.name, pivot)
    if c.tag in FLOAT_TAGS:
        pivot = _f32_exact(rng.normal())
        op = rng.choice(["<", "<=", ">", ">="])
        return Comparison(str(op), c.name, pivot)
    if c.tag == "bool":
        return col(c.name) == bool(rng.random() < 0.5)
    choices = [b"t0", b"t2", b"zzz"]
    if rng.random() < 0.5:
        return col(c.name) == choices[int(rng.integers(0, 3))]
    return col(c.name).isin([b"t1", b"t3"])


def _random_expr(rng, model, depth=2) -> Expr:
    if depth == 0 or rng.random() < 0.45:
        leaf = _random_leaf(rng, model)
        if rng.random() < 0.15:
            return Not(leaf)
        return leaf
    combine = And if rng.random() < 0.5 else Or
    return combine((
        _random_expr(rng, model, depth - 1),
        _random_expr(rng, model, depth - 1),
    ))


# ---------------------------------------------------------------------------
# brute-force aggregation with engine semantics
# ---------------------------------------------------------------------------

_I64_WRAP = 1 << 64
_I64_HALF = 1 << 63


def _wrap_i64(total: int) -> int:
    return ((total + _I64_HALF) % _I64_WRAP) - _I64_HALF


def _brute_query(model, aggregates, where, group_by):
    view = model.view()
    if where is not None:
        view = [r for r in view if _eval_model(where, r)]
    tags = {c.name: c.tag for c in model.columns}

    def agg_one(rows_subset):
        out = {}
        for spec in aggregates:
            if spec == "count":
                out["count(*)"] = len(rows_subset)
                continue
            fn, name = spec[:-1].split("(", 1)
            tag = tags[name]
            vals = [r[name] for r in rows_subset]
            if tag in FLOAT_TAGS:
                vals = [v for v in vals if not math.isnan(v)]
            key = f"{fn}({name})"
            if fn == "count":
                out[key] = len(vals)
            elif fn == "sum":
                if tag in FLOAT_TAGS:
                    out[key] = float(sum(vals))
                else:
                    out[key] = _wrap_i64(int(sum(int(v) for v in vals)))
            elif fn == "mean":
                out[key] = (
                    sum(float(v) for v in vals) / len(vals) if vals else None
                )
            elif fn == "min":
                out[key] = min(vals) if vals else None
            else:
                out[key] = max(vals) if vals else None
        return out

    if not group_by:
        return [agg_one(view)]
    groups = {}
    for r in view:
        groups.setdefault(tuple(r[g] for g in group_by), []).append(r)
    rows = []
    for key in sorted(groups):
        row = dict(zip(group_by, key))
        row.update(agg_one(groups[key]))
        rows.append(row)
    return rows


def _random_plan(rng, model):
    numeric = [c.name for c in model.columns if c.tag not in ("str",)]
    aggs = ["count"]
    for _ in range(int(rng.integers(1, 4))):
        name = numeric[int(rng.integers(0, len(numeric)))]
        fn = rng.choice(["count", "sum", "min", "max", "mean"])
        spec = f"{fn}({name})"
        if spec not in aggs:
            aggs.append(spec)
    where = _random_expr(rng, model) if rng.random() < 0.7 else None
    group_by = None
    groupable = [
        c.name for c in model.columns
        if c.tag in ("bool", "str", "i16", "i32") and c.name != "id"
    ]
    if groupable and rng.random() < 0.3:
        group_by = [groupable[int(rng.integers(0, len(groupable)))]]
    return aggs, where, group_by


def _values_close(a, b) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, bool) or isinstance(b, bool):
        return bool(a) == bool(b)
    if isinstance(a, bytes) or isinstance(b, bytes):
        return a == b
    fa, fb = float(a), float(b)
    if math.isnan(fa) or math.isnan(fb):
        return math.isnan(fa) and math.isnan(fb)
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    if fa == fb:
        return True
    return math.isclose(fa, fb, rel_tol=1e-9, abs_tol=1e-9)


def _assert_rows_match(got, expected, context):
    assert len(got) == len(expected), (
        f"{context}: {len(got)} rows vs {len(expected)} expected\n"
        f"got={got}\nexpected={expected}"
    )
    for g, e in zip(got, expected):
        assert set(g) == set(e), f"{context}: keys {set(g)} vs {set(e)}"
        for k in e:
            assert _values_close(g[k], e[k]), (
                f"{context}: {k}: {g[k]!r} vs expected {e[k]!r}\n"
                f"got={g}\nexpected={e}"
            )


# ---------------------------------------------------------------------------
# history runner
# ---------------------------------------------------------------------------

OPTS = WriterOptions(rows_per_page=8, rows_per_group=16)


class History:
    def __init__(self, seed):
        self.rng = np.random.default_rng(seed)
        self.store = MemoryCatalogStore()
        self.table = CatalogTable.create(self.store)
        self.next_key = 0
        columns = [ModelColumn(1, "id", "i64")]
        tags = list(self.rng.choice(ADDABLE, size=int(self.rng.integers(2, 5))))
        for i, tag in enumerate(tags):
            columns.append(ModelColumn(i + 2, f"c{i}", str(tag)))
        self.model = Model(columns)
        #: snapshot_id -> (timestamp_ms, frozen model)
        self.records = {}
        self.n_renames = 0

    def _keys(self, n):
        keys = list(range(self.next_key, self.next_key + n))
        self.next_key += n
        return keys

    def _record(self, snap):
        self.records[snap.snapshot_id] = (snap.timestamp_ms, self.model.clone())

    # -- steps ---------------------------------------------------------
    def step_append(self):
        n = int(self.rng.integers(8, 40))
        rows = _new_rows(self.rng, self.model, self._keys(n))
        batch = _write_arrays(self.model, rows)
        schema = _schema_of(self.model)
        if self.rng.random() < 0.3:
            snap = self.table.add_shards(
                batch, rows_per_shard=max(4, n // 3), schema=schema,
                options=OPTS,
            )
        else:
            snap = self.table.append(batch, schema=schema, options=OPTS)
        self.model.rows.extend(
            {self.model.column(k).field_id: v for k, v in r.items()}
            for r in rows
        )
        self._record(snap)

    def step_upsert(self):
        keys = []
        live = [r[1] for r in self.model.rows]  # field id 1 is "id"
        n_new = int(self.rng.integers(1, 10))
        keys.extend(self._keys(n_new))
        if live:
            n_old = int(self.rng.integers(1, min(12, len(live)) + 1))
            picked = self.rng.choice(live, size=n_old, replace=False)
            keys.extend(int(k) for k in picked)
        rows = _new_rows(self.rng, self.model, keys)
        batch = _write_arrays(self.model, rows)
        snap = self.table.upsert(
            batch, key="id", schema=_schema_of(self.model), options=OPTS
        )
        by_key = {r["id"]: r for r in rows}
        kept = [r for r in self.model.rows if r.get(1) not in by_key]
        self.model.rows = kept + [
            {self.model.column(k).field_id: v for k, v in r.items()}
            for r in rows
        ]
        self._record(snap)
        assert snap.summary.get("rows_upserted") == len(rows)

    def step_evolve(self):
        model = self.model
        ops = []
        n_ops = int(self.rng.integers(1, 4))
        for _ in range(n_ops):
            choice = self.rng.random()
            mutable = [c for c in model.columns if c.name != "id"]
            widenable = [c for c in mutable if WIDEN_NEXT[c.tag]]
            if choice < 0.35:
                tag = str(self.rng.choice(ADDABLE))
                name = f"a{model.next_field_id}"
                ops.append(AddColumn(name, TYPE_NAME[tag]))
                model.columns.append(
                    ModelColumn(model.next_field_id, name, tag)
                )
                model.next_field_id += 1
            elif choice < 0.55 and len(mutable) > 1:
                victim = mutable[int(self.rng.integers(0, len(mutable)))]
                ops.append(DropColumn(victim.name))
                model.columns.remove(victim)
            elif choice < 0.75 and mutable:
                victim = mutable[int(self.rng.integers(0, len(mutable)))]
                new_name = f"r{self.n_renames}_{victim.name}"[:24]
                self.n_renames += 1
                ops.append(RenameColumn(victim.name, new_name))
                victim.name = new_name
            elif widenable:
                victim = widenable[int(self.rng.integers(0, len(widenable)))]
                nxt = str(self.rng.choice(WIDEN_NEXT[victim.tag]))
                ops.append(WidenColumn(victim.name, TYPE_NAME[nxt]))
                victim.tag = nxt
        if not ops:
            return
        snap = self.table.evolve(*ops)
        self._record(snap)

    def step_delete(self):
        where = _random_expr(self.rng, self.model, depth=1)
        before = self.table.current_snapshot().snapshot_id
        snap = self.table.delete(where)
        view = self.model.view()
        keep = [
            row for row, v in zip(self.model.rows, view)
            if not _eval_model(where, v)
        ]
        deleted = len(self.model.rows) - len(keep)
        self.model.rows = keep
        if deleted == 0:
            assert snap.snapshot_id == before  # no no-op snapshot
            return
        self._record(snap)

    def step_compact(self):
        snap, report = self.table.compact()
        if report.bytes_in == 0:
            return
        self._record(snap)  # model unchanged: compaction is invisible

    def step_expire(self):
        retained = sorted(self.records)
        if len(retained) < 3:
            return
        victim = retained[int(self.rng.integers(0, len(retained) - 1))]
        if self.table.expire_snapshot(victim):
            del self.records[victim]

    def step_racing_appends(self):
        """Two appends from the same base: the loser must replay."""
        rows1 = _new_rows(self.rng, self.model, self._keys(6))
        rows2 = _new_rows(self.rng, self.model, self._keys(6))
        txn1 = self.table.transaction()
        txn2 = self.table.transaction()
        schema = _schema_of(self.model)
        txn1.append(_write_arrays(self.model, rows1), schema=schema,
                    options=OPTS)
        txn2.append(_write_arrays(self.model, rows2), schema=schema,
                    options=OPTS)
        snap1 = txn1.commit()
        self.model.rows.extend(
            {self.model.column(k).field_id: v for k, v in r.items()}
            for r in rows1
        )
        self._record(snap1)
        snap2 = txn2.commit()  # lost the race: replays on top
        assert snap2.snapshot_id == snap1.snapshot_id + 1
        self.model.rows.extend(
            {self.model.column(k).field_id: v for k, v in r.items()}
            for r in rows2
        )
        self._record(snap2)

    def run(self, n_steps):
        # histories always start with one append so there is data
        self.step_append()
        steps = [
            (self.step_append, 0.22),
            (self.step_upsert, 0.24),
            (self.step_evolve, 0.22),
            (self.step_delete, 0.12),
            (self.step_compact, 0.06),
            (self.step_expire, 0.06),
            (self.step_racing_appends, 0.08),
        ]
        fns = [s[0] for s in steps]
        weights = np.array([s[1] for s in steps])
        weights = weights / weights.sum()
        for _ in range(n_steps):
            fn = fns[int(self.rng.choice(len(fns), p=weights))]
            fn()

    # -- verification --------------------------------------------------
    def check_snapshot(self, snapshot_id):
        ts, model = self.records[snapshot_id]
        # as_of time travel resolves the recorded timestamp exactly
        assert self.table.as_of(ts).snapshot_id == snapshot_id
        with self.table.pin(snapshot_id=snapshot_id) as pinned:
            self._check_scan(pinned, model, snapshot_id)
            for _ in range(2):
                aggs, where, group_by = _random_plan(self.rng, model)
                expected = _brute_query(model, aggs, where, group_by)
                for use_metadata in (True, False):
                    got = pinned.query(
                        aggs,
                        where=where,
                        group_by=group_by,
                        use_metadata=use_metadata,
                    ).rows
                    _assert_rows_match(
                        got,
                        expected,
                        f"snap {snapshot_id} meta={use_metadata} "
                        f"aggs={aggs} where={where} by={group_by}",
                    )

    def _check_scan(self, pinned, model, snapshot_id):
        names = [c.name for c in model.columns]
        got = pinned.read(names, widen_quantized=True)
        view = model.view()
        assert got.num_rows == len(view), (
            f"snap {snapshot_id}: {got.num_rows} rows vs {len(view)}"
        )
        if not view:
            return
        order = np.argsort(np.asarray(got.column("id")), kind="stable")
        expected_rows = sorted(view, key=lambda r: r["id"])
        for c in model.columns:
            values = got.column(c.name)
            if isinstance(values, np.ndarray):
                values = values[order]
            else:
                values = [values[i] for i in order]
            expected = [r[c.name] for r in expected_rows]
            if c.tag in FLOAT_TAGS:
                # widening and fills are exact: bit-exact, NaN-aware
                assert np.array_equal(
                    np.asarray(values, dtype=np.float64),
                    np.array(expected, dtype=np.float64),
                    equal_nan=True,
                ), f"snap {snapshot_id}: column {c.name} mismatch"
            elif c.tag in INT_TAGS or c.tag == "bool":
                assert np.array_equal(
                    np.asarray(values), np.array(expected)
                ), f"snap {snapshot_id}: column {c.name} mismatch"
            else:
                assert list(values) == expected, (
                    f"snap {snapshot_id}: column {c.name} mismatch"
                )

    def check_all(self):
        for snapshot_id in sorted(self.records):
            self.check_snapshot(snapshot_id)


# ---------------------------------------------------------------------------
# the randomized suite: 200 seeded histories
# ---------------------------------------------------------------------------

class TestEvolutionDifferential:
    @pytest.mark.parametrize("seed", range(200))
    def test_randomized_history(self, seed):
        h = History(seed)
        h.run(n_steps=int(h.rng.integers(4, 8)))
        h.check_all()


# ---------------------------------------------------------------------------
# directed racing-commit edges
# ---------------------------------------------------------------------------

def _simple_table(keys, clicks):
    return Table({
        "id": np.array(keys, dtype=np.int64),
        "clicks": np.array(clicks, dtype=np.int64),
    })


class TestRacingCommits:
    def _fresh(self):
        t = CatalogTable.create(MemoryCatalogStore())
        t.append(_simple_table([1, 2, 3], [10, 20, 30]), options=OPTS)
        return t

    def test_upsert_aborts_on_concurrent_append(self):
        t = self._fresh()
        txn = t.transaction()
        txn.upsert(_simple_table([2, 4], [99, 99]), key="id")
        t.append(_simple_table([5], [50]), options=OPTS)
        with pytest.raises(CommitConflict):
            txn.commit()
        # the loser's staged files are cleaned up; table is untouched
        got = t.read(["id", "clicks"])
        assert sorted(np.asarray(got.column("id")).tolist()) == [1, 2, 3, 5]

    def test_upsert_replays_over_concurrent_upsert_of_other_files(self):
        # two upserts race: loser aborts because the winner appended
        t = self._fresh()
        txn = t.transaction()
        txn.upsert(_simple_table([2], [99]), key="id")
        t.upsert(_simple_table([3], [77]), key="id")
        with pytest.raises(CommitConflict):
            txn.commit()

    def test_evolve_aborts_on_concurrent_evolve(self):
        t = self._fresh()
        txn = t.transaction()
        txn.evolve(AddColumn("a", "double"))
        t.evolve(AddColumn("b", "double"))
        with pytest.raises(CommitConflict):
            txn.commit()

    def test_evolve_replays_over_concurrent_append(self):
        t = self._fresh()
        txn = t.transaction()
        txn.evolve(AddColumn("a", "double"))
        t.append(_simple_table([7], [70]), options=OPTS)
        snap = txn.commit()  # schema log unchanged by the append: replay
        assert snap.current_schema_id is not None
        assert {f.schema_id for f in snap.files} == {0}
        got = t.read(["id", "clicks", "a"])
        assert got.num_rows == 4
        assert np.isnan(np.asarray(got.column("a"))).all()

    def test_append_aborts_on_concurrent_evolve(self):
        t = self._fresh()
        txn = t.transaction()
        txn.append(_simple_table([9], [90]), options=OPTS)
        t.evolve(AddColumn("a", "double"))
        with pytest.raises(CommitConflict):
            txn.commit()
