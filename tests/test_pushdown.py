"""Property-style tests: pushdown must never change scan results.

The contract of the three-layer predicate pushdown (catalog file
pruning -> footer zone maps -> decode-time filtering) is that it is a
pure optimization: ``scan(where=e)`` returns byte-identical rows to
reading everything and filtering in memory. These tests throw
randomized tables (all dtypes, NaN/inf, quantized columns, deletion
vectors, multi-shard catalogs) and randomized expressions at that
contract.
"""

import numpy as np
import pytest

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core import (
    BullionReader,
    BullionWriter,
    LoaderOptions,
    Predicate,
    ScanStats,
    Table,
    TrainingDataLoader,
    WriterOptions,
)
from repro.expr import Expr, all_of, any_of, col, evaluate
from repro.iosim import SimulatedStorage
from repro.quantization import FloatFormat, QuantizationPolicy


# ---------------------------------------------------------------------------
# randomized generators
# ---------------------------------------------------------------------------

def _random_table(rng, n, quantized=False):
    """A table exercising every filterable dtype, plus NaN/inf/big ints."""
    i64 = rng.integers(-(10**9), 10**9, n).astype(np.int64)
    # sprinkle values at the float64 precision boundary
    big_at = rng.integers(0, n, max(1, n // 50))
    i64[big_at] = 2**53 + rng.integers(-3, 4, len(big_at))
    f64 = rng.normal(size=n)
    f64[rng.random(n) < 0.05] = np.nan
    f64[rng.random(n) < 0.02] = np.inf
    f64[rng.random(n) < 0.02] = -np.inf
    cols = {
        "i64": i64,
        "i32": rng.integers(-50, 50, n).astype(np.int32),
        "f64": f64,
        "f32": rng.normal(size=n).astype(np.float32),
        "flag": rng.random(n) < 0.3,
        "tag": [f"t{int(v)}".encode() for v in rng.integers(0, 8, n)],
    }
    if quantized:
        cols["q16"] = rng.normal(size=n).astype(np.float32)
        cols["qb"] = (rng.normal(size=n) * 4).astype(np.float32)
    return Table(cols)


def _random_leaf(rng, table):
    name = rng.choice(["i64", "i32", "f64", "f32", "flag", "tag"])
    values = table.columns[name]
    if name == "tag":
        choices = [b"t0", b"t3", b"t7", b"zzz"]
        if rng.random() < 0.5:
            return col(name) == choices[rng.integers(0, len(choices))]
        k = rng.integers(1, 4)
        return col(name).isin([choices[i] for i in range(k)])
    if name == "flag":
        return col(name) == bool(rng.random() < 0.5)
    arr = np.asarray(values, dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    if len(finite) == 0:
        pivot = 0.0
    else:
        pivot = float(rng.choice(finite))
    if name.startswith("i") and rng.random() < 0.7:
        pivot = int(pivot)
    op = rng.choice(["==", "!=", "<", "<=", ">", ">="])
    return getattr(col(name), {
        "==": "__eq__", "!=": "__ne__", "<": "__lt__",
        "<=": "__le__", ">": "__gt__", ">=": "__ge__",
    }[op])(pivot)


def _random_expr(rng, table, depth=2):
    if depth == 0 or rng.random() < 0.4:
        return _random_leaf(rng, table)
    kind = rng.random()
    if kind < 0.1:
        from repro.expr import Not

        return Not(_random_expr(rng, table, depth - 1))
    combine = all_of if kind < 0.6 else any_of
    return combine(
        _random_expr(rng, table, depth - 1),
        _random_expr(rng, table, depth - 1),
    )


def _expected(read_plain: Table, read_widened: Table, expr: Expr) -> Table:
    """Brute force: evaluate over fully-materialized widened columns."""
    mask = evaluate(expr, read_widened.columns)
    return read_plain.take_mask(mask)


def _assert_tables_equal(a: Table, b: Table):
    assert set(a.columns) == set(b.columns)
    for name in a.columns:
        va, vb = a.columns[name], b.columns[name]
        if isinstance(va, np.ndarray):
            assert va.dtype == np.asarray(vb).dtype, name
            np.testing.assert_array_equal(va, vb, err_msg=name)
        else:
            assert list(va) == list(vb), name


# ---------------------------------------------------------------------------
# single-file scans
# ---------------------------------------------------------------------------

class TestScanMatchesBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("workers", [0, 4])
    def test_randomized(self, seed, workers):
        rng = np.random.default_rng(seed)
        table = _random_table(rng, 700)
        dev = SimulatedStorage()
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=32, rows_per_group=128)
        ).write(table)
        reader = BullionReader(dev)
        names = list(table.columns)
        plain = reader.project(names)
        widened = reader.project(names, widen_quantized=True)
        for _case in range(6):
            expr = _random_expr(rng, table)
            got = reader.scan(
                names, where=expr, max_workers=workers
            ).to_table()
            _assert_tables_equal(got, _expected(plain, widened, expr))

    @pytest.mark.parametrize("seed", range(4))
    def test_with_deletion_vectors(self, seed):
        from repro.core import delete_rows

        rng = np.random.default_rng(100 + seed)
        table = _random_table(rng, 500)
        dev = SimulatedStorage()
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=25, rows_per_group=100)
        ).write(table)
        doomed = np.flatnonzero(rng.random(500) < 0.2)
        delete_rows(dev, doomed)
        reader = BullionReader(dev)
        names = list(table.columns)
        plain = reader.project(names)  # deletion-filtered
        widened = reader.project(names, widen_quantized=True)
        for _case in range(5):
            expr = _random_expr(rng, table)
            got = reader.scan(names, where=expr).to_table()
            _assert_tables_equal(got, _expected(plain, widened, expr))

    @pytest.mark.parametrize("seed", range(3))
    def test_quantized_columns(self, seed):
        rng = np.random.default_rng(200 + seed)
        table = _random_table(rng, 400, quantized=True)
        policy = QuantizationPolicy(
            assignments={"q16": FloatFormat.FP16, "qb": FloatFormat.BF16},
            default=FloatFormat.FP32,
        )
        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=50, rows_per_group=100, quantization=policy
            ),
        ).write(table)
        reader = BullionReader(dev)
        names = list(table.columns)
        plain = reader.project(names)
        widened = reader.project(names, widen_quantized=True)
        for _case in range(4):
            base = _random_expr(rng, table)
            # force a quantized filter column into every expression
            pivot = float(rng.normal())
            q = col("q16") > pivot if rng.random() < 0.5 else col("qb") <= pivot
            expr = base & q
            got = reader.scan(names, where=expr).to_table()
            _assert_tables_equal(got, _expected(plain, widened, expr))

    def test_batches_respect_batch_size(self):
        rng = np.random.default_rng(7)
        table = _random_table(rng, 600)
        dev = SimulatedStorage()
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=32, rows_per_group=64)
        ).write(table)
        reader = BullionReader(dev)
        expr = col("i32") >= 0
        batches = list(
            reader.scan(["i64", "tag"], where=expr, batch_size=37)
        )
        assert all(b.num_rows == 37 for b in batches[:-1])
        total = sum(b.num_rows for b in batches)
        assert total == int((np.asarray(table.columns["i32"]) >= 0).sum())


class TestPushdownLayersActuallySkip:
    def _sorted_file(self, n=4000, rows_per_group=500):
        dev = SimulatedStorage()
        table = Table(
            {
                "ts": np.arange(n, dtype=np.int64),
                "v": np.linspace(0.0, 1.0, n),
                "blob": [b"x" * 40 for _ in range(n)],
            }
        )
        BullionWriter(
            dev,
            options=WriterOptions(rows_per_page=100, rows_per_group=rows_per_group),
        ).write(table)
        return dev, table

    def test_zone_maps_prune_groups_without_io(self):
        dev, _table = self._sorted_file()
        reader = BullionReader(dev)
        scan = reader.scan(["ts", "v"], where=col("ts") < 400)
        assert scan.row_groups == [0]
        out = scan.to_table()
        assert out.num_rows == 400
        assert scan.stats.groups_pruned == 7
        assert scan.stats.rows_pruned == 3500

    def test_late_materialization_skips_residual_chunks(self):
        dev, _table = self._sorted_file()
        reader = BullionReader(dev)
        # one group survives the ts zone maps, but the stats-free blob
        # conjunct (strings carry no zone maps) kills every row at
        # decode time — the v chunk must never be fetched
        stats = ScanStats()
        scan = reader.scan(
            ["ts", "v", "blob"],
            where=(col("ts") >= 900) & (col("ts") < 1000)
            & (col("blob") == b"nope"),
            scan_stats=stats,
        )
        assert scan.to_table().num_rows == 0
        assert stats.groups_empty == stats.groups_scanned == 1
        assert stats.chunks_skipped == 1  # the v chunk, never fetched

    def test_missing_stats_conservatively_scan(self):
        dev = SimulatedStorage()
        n = 300
        table = Table({"a": np.arange(n, dtype=np.int64)})
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=50, rows_per_group=100,
                collect_statistics=False,
            ),
        ).write(table)
        reader = BullionReader(dev)
        scan = reader.scan(["a"], where=col("a") < 0)
        assert scan.stats.groups_pruned == 0  # nothing provable
        assert scan.to_table().num_rows == 0  # still exact

    def test_nan_only_groups_are_never_pruned(self):
        dev = SimulatedStorage()
        vals = np.concatenate(
            [np.full(100, np.nan), np.arange(100) / 100.0]
        )
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=50, rows_per_group=100)
        ).write(Table({"x": vals}))
        reader = BullionReader(dev)
        # != matches the NaN rows; the NaN-only group has no stats and
        # must be scanned
        scan = reader.scan(["x"], where=col("x") != 0.5)
        out = scan.to_table()
        assert out.num_rows == 199  # everything but the exact 0.5 row
        assert scan.stats.groups_pruned == 0

    def test_inf_rows_are_not_lost_to_pruning(self):
        dev = SimulatedStorage()
        vals = np.concatenate(
            [np.linspace(0, 1, 100), np.array([np.inf] * 4 + [5.0] * 96)]
        )
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=50, rows_per_group=100)
        ).write(Table({"x": vals}))
        reader = BullionReader(dev)
        out = reader.scan(["x"], where=col("x") >= 10.0).to_table()
        assert out.num_rows == 4
        assert np.all(np.isinf(out.column("x")))

    def test_int64_boundary_rows_survive_pruning(self):
        # regression: float64-rounded stats must not prune the group
        # holding 2**53 + 1
        dev = SimulatedStorage()
        vals = np.concatenate(
            [
                np.arange(100, dtype=np.int64),
                np.full(100, 2**53 + 1, dtype=np.int64),
            ]
        )
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=50, rows_per_group=100)
        ).write(Table({"x": vals}))
        reader = BullionReader(dev)
        out = reader.scan(["x"], where=col("x") == 2**53 + 1).to_table()
        assert out.num_rows == 100
        out = reader.scan(["x"], where=col("x") > 2**53).to_table()
        assert out.num_rows == 100

    def test_legacy_predicate_unchanged_group_granular(self):
        dev, _table = self._sorted_file()
        reader = BullionReader(dev)
        out = reader.scan(
            ["ts"], predicate=Predicate("ts", 600, 610)
        ).to_table()
        # prune-only semantics: whole surviving group comes back
        assert out.num_rows == 500
        assert reader.prune_row_groups("ts", 600, 610) == [1]

    def test_filter_on_list_column_rejected(self):
        dev = SimulatedStorage()
        BullionWriter(dev).write(
            Table({"l": [np.arange(3, dtype=np.int64)] * 10})
        )
        reader = BullionReader(dev)
        with pytest.raises(ValueError, match="list column"):
            reader.scan(["l"], where=col("l") == 1)

    def test_missing_filter_column_raises(self):
        dev = SimulatedStorage()
        BullionWriter(dev).write(Table({"a": np.arange(5, dtype=np.int64)}))
        with pytest.raises(KeyError):
            BullionReader(dev).scan(["a"], where=col("nope") > 1)


# ---------------------------------------------------------------------------
# catalog-level pruning
# ---------------------------------------------------------------------------

def _build_catalog(rng, n_files=5, rows=400, quantized=False):
    cat = CatalogTable.create(MemoryCatalogStore())
    tables = []
    for k in range(n_files):
        t = _random_table(rng, rows, quantized=quantized)
        # shift ids so files cover disjoint ranges (prunable)
        t.columns["i64"] = np.arange(
            k * rows, (k + 1) * rows, dtype=np.int64
        )
        tables.append(t)
        cat.append(
            t,
            options=WriterOptions(rows_per_page=25, rows_per_group=100),
        )
    return cat, tables


class TestCatalogPushdown:
    @pytest.mark.parametrize("seed", range(4))
    def test_multi_file_scan_matches_brute_force(self, seed):
        rng = np.random.default_rng(300 + seed)
        cat, tables = _build_catalog(rng)
        names = list(tables[0].columns)
        with cat.pin() as snap:
            plain = snap.read(names)
            widened = snap.read(names, widen_quantized=True)
            for _case in range(6):
                expr = _random_expr(rng, tables[0])
                got = snap.read(names, where=expr)
                _assert_tables_equal(
                    got, _expected(plain, widened, expr)
                )

    def test_file_pruning_skips_opens(self):
        rng = np.random.default_rng(42)
        cat, _tables = _build_catalog(rng)
        stats = ScanStats()
        expr = (col("i64") >= 850) & (col("i64") < 900)
        with cat.pin() as snap:
            kept, pruned = snap.prune_files(expr)
            assert len(kept) == 1 and len(pruned) == 4
            out = snap.read(names := ["i64", "f64"], where=expr,
                            scan_stats=stats)
            assert out.num_rows == 50
            # pruned files were never opened by this pinned snapshot
            assert len(snap._reader_cache) == 1
        assert stats.files_pruned == 4
        assert stats.files_scanned == 1
        assert names == ["i64", "f64"]

    def test_multishard_commit_carries_stats(self):
        rng = np.random.default_rng(5)
        cat = CatalogTable.create(MemoryCatalogStore())
        t = _random_table(rng, 900)
        t.columns["i64"] = np.arange(900, dtype=np.int64)
        cat.add_shards(t, rows_per_shard=300)
        snap = cat.current_snapshot()
        assert len(snap.files) == 3
        for f in snap.files:
            assert f.column_stats and "i64" in f.column_stats
        with cat.pin() as pinned:
            kept, pruned = pinned.prune_files(col("i64") < 300)
            assert len(kept) == 1 and len(pruned) == 2

    def test_scan_after_delete_expr(self):
        rng = np.random.default_rng(11)
        cat, tables = _build_catalog(rng, n_files=3)
        names = list(tables[0].columns)
        expr = (col("i32") >= 0) & (col("f32") > 0.0)
        # delete exactly what scan(where=expr) returns
        with cat.pin() as snap:
            to_die = snap.read(names, where=expr)
        cat.delete(expr)
        with cat.pin() as snap:
            after = snap.read(names)
        assert after.num_rows == sum(
            t.num_rows for t in tables
        ) - to_die.num_rows
        # none of the remaining rows match the expression
        with cat.pin() as snap:
            assert snap.read(names, where=expr).num_rows == 0

    def test_legacy_predicate_delete_still_works(self):
        rng = np.random.default_rng(13)
        cat, _tables = _build_catalog(rng, n_files=2)
        head = cat.delete(Predicate("i64", 100, 199))
        assert head.summary["rows_deleted"] == 100
        with cat.pin() as snap:
            out = snap.read(["i64"])
            assert not np.isin(
                np.arange(100, 200), np.asarray(out.column("i64"))
            ).any()

    def test_loader_with_where(self):
        rng = np.random.default_rng(17)
        cat, tables = _build_catalog(rng, n_files=2)
        expr = col("i32") > 0
        with cat.pin() as snap:
            loader = snap.loader(
                ["i64", "i32"],
                LoaderOptions(batch_size=64, where=expr),
            )
            rows = sum(b.num_rows for b in loader)
            expected = snap.read(["i64", "i32"], where=expr).num_rows
        assert rows == expected

    def test_empty_filtered_scan_keeps_widened_dtype(self):
        rng = np.random.default_rng(29)
        table = _random_table(rng, 200, quantized=True)
        policy = QuantizationPolicy(
            assignments={"qb": FloatFormat.BF16}, default=FloatFormat.FP32
        )
        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=50, rows_per_group=100, quantization=policy
            ),
        ).write(table)
        reader = BullionReader(dev)
        nothing = col("i64") > 10**17
        empty = reader.scan(
            ["qb"], where=nothing, widen_quantized=True
        ).to_table()
        some = reader.scan(["qb"], widen_quantized=True).to_table()
        assert empty.num_rows == 0
        assert empty.column("qb").dtype == some.column("qb").dtype

    def test_delete_with_unknown_column_raises_and_aborts(self):
        rng = np.random.default_rng(31)
        cat, _tables = _build_catalog(rng, n_files=2)
        before = cat.current_snapshot()
        with pytest.raises(KeyError):
            cat.delete(col("no_such_column") > 0)
        assert cat.current_snapshot().snapshot_id == before.snapshot_id
        # nothing staged leaked: every data file is still referenced
        referenced = set()
        for s in cat.history():
            referenced |= s.file_ids()
        assert set(cat.store.list_data()) == referenced

    def test_loader_where_prunes_files_before_opening(self):
        rng = np.random.default_rng(37)
        cat, _tables = _build_catalog(rng, n_files=5)
        expr = col("i64") < 400  # only the first file can match
        with cat.pin() as snap:
            loader = snap.loader(
                ["i64"], LoaderOptions(batch_size=64, where=expr)
            )
            rows = sum(b.num_rows for b in loader)
            assert rows == 400
            assert len(snap._reader_cache) == 1  # 4 files never opened

    def test_maintenance_retention_filter(self):
        from repro.catalog import MaintenancePolicy, MaintenanceService

        rng = np.random.default_rng(23)
        cat, _tables = _build_catalog(rng, n_files=3)
        horizon = col("i64") < 400  # exactly the first file's ids
        service = MaintenanceService(
            cat,
            MaintenancePolicy(
                retention_filter=horizon,
                keep_snapshots=100,  # keep expiry out of this test
            ),
        )
        jobs = service.plan()
        retention = [j for j in jobs if j.kind == "retention"]
        assert len(retention) == 1
        assert len(retention[0].file_ids) == 1  # manifest-pruned plan
        report = service.run_once()
        assert report.rows_deleted == 400
        with cat.pin() as snap:
            assert snap.read(["i64"], where=horizon).num_rows == 0
            assert snap.read(["i64"]).num_rows == 800
        # steady state: every matching row gone, stats prune the plan
        assert not [j for j in service.plan() if j.kind == "retention"]
        report = service.run_once()
        assert report.rows_deleted == 0
