"""Serving layer: protocol, caches and server integration.

Covers the wire codec round-trips (bit-exact, including NaN and raw
bytes), plan canonicalization (spelling variants collapse to one cache
key), the admission controller and deadline primitives in isolation,
and a live server end-to-end: every op, typed errors, time travel, the
result cache and the HTTP probe surface.
"""

from __future__ import annotations

import json
import math
import socket
import threading
import urllib.request

import numpy as np
import pytest

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core.table import Table
from repro.server import (
    AdmissionController,
    BullionServer,
    Deadline,
    ServerBusy,
    ServerClient,
    TableService,
    protocol,
)
from repro.server.protocol import (
    BadPlan,
    DeadlineExceeded,
    ProtocolError,
    UnknownSnapshot,
    UnknownTable,
)


# ---------------------------------------------------------------------------
# fixtures
# ---------------------------------------------------------------------------

def build_table(n_files=3, rows=120, seed=0):
    store = MemoryCatalogStore()
    table = CatalogTable.create(store)
    rng = np.random.default_rng(seed)
    for k in range(n_files):
        lo = k * rows
        table.append(Table({
            "ts": np.arange(lo, lo + rows, dtype=np.int64),
            "v": rng.normal(size=rows),
            "region": rng.integers(0, 5, size=rows).astype(np.int32),
        }))
    return store, table


@pytest.fixture()
def served():
    _store, table = build_table()
    service = TableService({"events": table}, workers=2, max_queue=4)
    server = BullionServer(service)
    client = ServerClient(server.host, server.port, timeout=30.0)
    try:
        yield server, client, table
    finally:
        client.close()
        server.close()


# ---------------------------------------------------------------------------
# framing + codecs
# ---------------------------------------------------------------------------

def test_frame_roundtrip_over_socketpair():
    a, b = socket.socketpair()
    try:
        payload = protocol.dumps_canonical({"op": "ping", "n": 1})
        protocol.send_frame(a, payload)
        assert protocol.read_frame(b) == payload
        a.close()
        assert protocol.read_frame(b) is None  # clean EOF
    finally:
        b.close()


def test_frame_rejects_oversize_header():
    a, b = socket.socketpair()
    try:
        a.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            protocol.read_frame(b)
    finally:
        a.close()
        b.close()


def test_canonical_json_is_deterministic():
    one = protocol.dumps_canonical({"b": 1, "a": [1, 2]})
    two = protocol.dumps_canonical({"a": [1, 2], "b": 1})
    assert one == two == b'{"a":[1,2],"b":1}'


def test_table_codec_bit_exact_roundtrip():
    rng = np.random.default_rng(3)
    table = Table({
        "f": rng.normal(size=17),
        "i": rng.integers(-(2**40), 2**40, size=17),
        "s": [f"row-{k}".encode() for k in range(17)],
    })
    doc = protocol.encode_table(table)
    # the doc must survive canonical JSON, not just Python round-trip
    back = protocol.decode_table(
        json.loads(protocol.dumps_canonical(doc))
    )
    assert list(back.columns) == list(table.columns)  # order preserved
    assert back.equals(table)
    assert back.column("f").tobytes() == table.column("f").tobytes()


def test_table_codec_preserves_nan_and_inf_bits():
    values = np.array([math.nan, math.inf, -math.inf, -0.0])
    back = protocol.decode_table(
        protocol.encode_table(Table({"x": values}))
    )
    assert back.column("x").tobytes() == values.tobytes()


def test_scalar_codec_escapes():
    row = {"a": float("nan"), "b": b"\x00\xff", "c": 7, "d": None}
    wire = protocol.encode_query_rows([row])
    protocol.dumps_canonical(wire)  # NaN must be representable
    (back,) = protocol.decode_query_rows(
        json.loads(protocol.dumps_canonical(wire))
    )
    assert math.isnan(back["a"])
    assert back["b"] == b"\x00\xff"
    assert back["c"] == 7 and back["d"] is None


# ---------------------------------------------------------------------------
# plan canonicalization
# ---------------------------------------------------------------------------

def test_query_plan_spelling_variants_share_a_key():
    base = protocol.canonical_query_plan(
        {"aggregates": ["count", "sum(v)"], "where": "region >= 2"}
    )
    spaced = protocol.canonical_query_plan({
        "aggregates": ["count", "sum( v )"],
        "where": protocol.expr_from_doc(base["where"]).to_dict(),
    })
    assert protocol.plan_key("query", 3, base) == protocol.plan_key(
        "query", 3, spaced
    )
    # a different snapshot is a different key
    assert protocol.plan_key("query", 4, base) != protocol.plan_key(
        "query", 3, base
    )


def test_bad_plans_are_typed():
    with pytest.raises(BadPlan):
        protocol.canonical_query_plan({"aggregates": []})
    with pytest.raises(BadPlan):
        protocol.canonical_query_plan(
            {"aggregates": ["frobnicate(v)"]}
        )
    with pytest.raises(BadPlan):
        protocol.canonical_scan_plan({"columns": ["a"], "where": 7})
    with pytest.raises(BadPlan):
        protocol.canonical_scan_plan({"columns": ["a"], "batch_size": 0})
    with pytest.raises(BadPlan):
        protocol.canonical_scan_plan({"columns": []})


# ---------------------------------------------------------------------------
# deadline + admission primitives
# ---------------------------------------------------------------------------

def test_deadline_expires_and_raises():
    assert Deadline(None).remaining() is None
    assert not Deadline(None).expired()
    d = Deadline(0.0)
    assert d.expired()
    with pytest.raises(DeadlineExceeded):
        d.check()
    Deadline(60.0).check()  # plenty of time: no raise


def test_admission_rejects_when_full_and_recovers():
    ctl = AdmissionController(workers=1, max_queue=0, queue_timeout_s=0.05)
    ctl.acquire()
    with pytest.raises(ServerBusy) as exc:
        ctl.acquire()
    assert exc.value.reason == "queue_full"
    ctl.release()
    ctl.acquire()  # slot is back
    ctl.release()
    assert ctl.stats() == {"inflight": 0, "queued": 0}


def test_admission_queue_timeout_reason():
    ctl = AdmissionController(workers=1, max_queue=4, queue_timeout_s=0.05)
    ctl.acquire()
    with pytest.raises(ServerBusy) as exc:
        ctl.acquire()
    assert exc.value.reason == "queue_timeout"
    ctl.release()


def test_admission_queued_request_gets_the_freed_slot():
    ctl = AdmissionController(workers=1, max_queue=2, queue_timeout_s=5.0)
    ctl.acquire()
    got = threading.Event()

    def waiter():
        ctl.acquire()
        got.set()
        ctl.release()

    thread = threading.Thread(target=waiter)
    thread.start()
    ctl.release()
    assert got.wait(5.0), "queued request never admitted"
    thread.join(5.0)


# ---------------------------------------------------------------------------
# server integration
# ---------------------------------------------------------------------------

def test_simple_ops(served):
    _server, client, table = served
    assert client.ping(echo="x")["echo"] == "x"
    health = client.health()
    assert health["status"] == "serving" and health["tables"] == ["events"]
    (entry,) = client.tables()
    assert entry["rows"] == 360 and entry["files"] == 3
    head = table.current_snapshot().snapshot_id
    info = client.snapshot("events")
    assert info["snapshot_id"] == head and info["rows"] == 360


def test_query_matches_library_and_caches(served):
    _server, client, table = served
    reply = client.query(
        "events", ["count", "sum(region)"], where="region >= 2"
    )
    pin = table.pin(snapshot_id=reply.snapshot_id)
    try:
        expect = pin.query(
            ["count", "sum(region)"],
            where=protocol.expr_from_doc(
                protocol.canonical_query_plan(
                    {"aggregates": ["count"], "where": "region >= 2"}
                )["where"]
            ),
        ).rows
        assert reply.rows == expect
        # spelling variant: same canonical plan, so identical bytes
        again = client.query(
            "events", ["count", "sum( region )"], where="region >= 2"
        )
        assert again.raw == reply.raw
    finally:
        pin.release()


def test_scan_matches_library_bytes(served):
    _server, client, table = served
    reply = client.scan(
        "events", ["ts", "v"], where="region = 1", batch_size=50
    )
    pin = table.pin(snapshot_id=reply.snapshot_id)
    try:
        plan = protocol.canonical_scan_plan({
            "columns": ["ts", "v"],
            "where": "region = 1",
            "batch_size": 50,
        })
        assert reply.raw_frames == protocol.replay_scan_frames(
            pin, reply.snapshot_id, plan
        )
    finally:
        pin.release()
    # and a second identical scan replays the same bytes (plan cache)
    again = client.scan(
        "events", ["ts", "v"], where="region = 1", batch_size=50
    )
    assert again.raw_frames == reply.raw_frames


def test_time_travel_snapshots(served):
    _server, client, table = served
    old = table.current_snapshot().snapshot_id
    table.append(Table({
        "ts": np.arange(1000, 1050, dtype=np.int64),
        "v": np.zeros(50),
        "region": np.full(50, 9, dtype=np.int32),
    }))
    head = client.query("events", ["count"])
    assert head.rows[0]["count(*)"] == 410
    past = client.query("events", ["count"], snapshot_id=old)
    assert past.rows[0]["count(*)"] == 360
    ts = table.snapshot(old).timestamp_ms
    as_of = client.query("events", ["count"], as_of=ts)
    assert as_of.snapshot_id == old


def test_typed_errors_over_the_wire(served):
    _server, client, _table = served
    with pytest.raises(UnknownTable):
        client.query("nope", ["count"])
    with pytest.raises(UnknownSnapshot):
        client.query("events", ["count"], snapshot_id=999)
    with pytest.raises(BadPlan):
        client.query("events", ["frobnicate(v)"])
    with pytest.raises(BadPlan):
        client.scan("events", ["no_such_column"])
    # the connection survives every typed error
    assert client.ping()["ok"] is True


def test_unknown_op_and_bad_frames(served):
    server, _client, _table = served
    with socket.create_connection(
        (server.host, server.port), timeout=10
    ) as sock:
        protocol.send_frame(
            sock, protocol.dumps_canonical({"op": "dance"})
        )
        doc = protocol.loads(protocol.read_frame(sock))
        assert doc["error"]["code"] == "bad_request"
        # non-JSON payload: typed error, then the server drops the
        # stream (framing can no longer be trusted)
        protocol.send_frame(sock, b"\x00not json")
        doc = protocol.loads(protocol.read_frame(sock))
        assert doc["error"]["code"] == "bad_request"
        assert protocol.read_frame(sock) is None


def test_http_probe_surface(served):
    server, _client, _table = served
    base = f"http://{server.host}:{server.port}"
    with urllib.request.urlopen(base + "/health", timeout=10) as resp:
        doc = json.loads(resp.read())
        assert resp.status == 200 and doc["status"] == "serving"
    with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
        text = resp.read().decode()
        assert "server_requests_total" in text
    with pytest.raises(urllib.error.HTTPError):
        urllib.request.urlopen(base + "/nope", timeout=10)


def test_metrics_op_reports_server_families(served):
    _server, client, _table = served
    client.query("events", ["count"])
    text = client.metrics_text()
    assert 'server_requests_total{op="query"}' in text


def test_server_close_is_idempotent_and_joins_threads():
    _store, table = build_table(n_files=1, rows=10)
    before = threading.active_count()
    service = TableService({"t": table}, workers=1, max_queue=1)
    server = BullionServer(service)
    with ServerClient(server.host, server.port) as client:
        client.ping()
    server.close()
    server.close()
    assert threading.active_count() == before
    # the service restored the table's reader provider on close
    assert table.reader_provider is None
