"""Catalog-wide round-trip tests: every Table 2 scheme, every kind.

These are the core guarantee behind the cascading framework: any blob
produced by ``encode_blob`` decodes back to equal values through the
self-describing id byte, regardless of which scheme (or composition)
produced it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings import (
    ALP,
    BitShuffle,
    Chimp,
    Chunked,
    Delta,
    Dictionary,
    FastBP128,
    FastPFOR,
    FixedBitWidth,
    FrameOfReference,
    FSST,
    Gorilla,
    Huffman,
    ListEncoding,
    MainlyConstant,
    Pseudodecimal,
    RLE,
    Roaring,
    SparseBool,
    SparseListDelta,
    Trivial,
    Varint,
    ZigZag,
    catalog,
    decode_blob,
    encode_blob,
)

RNG = np.random.default_rng(42)


def ints_signed(n=777):
    return RNG.integers(-(10**9), 10**9, n).astype(np.int64)


def ints_small(n=777):
    return RNG.integers(0, 100, n).astype(np.int64)


def runs(n=50):
    return np.repeat(
        RNG.integers(0, 5, n), RNG.integers(1, 30, n)
    ).astype(np.int64)


def floats(n=500):
    return RNG.normal(size=n)


def decimals(n=500):
    return np.round(RNG.normal(size=n) * 100, 2)


def bools(n=2000):
    return RNG.random(n) < 0.05


def strings(n=300):
    return [f"https://example.com/item/{i % 40}".encode() for i in range(n)]


def int_lists(n=60):
    return [
        RNG.integers(0, 10**6, int(RNG.integers(0, 30))).astype(np.int64)
        for _ in range(n)
    ]


INT_ENCODINGS = [
    Trivial(),
    FixedBitWidth(),
    ZigZag(),
    RLE(),
    Dictionary(),
    Delta(),
    FrameOfReference(),
    Chunked(),
    BitShuffle(),
]
NONNEG_ENCODINGS = [Varint(), FastPFOR(), FastBP128(), Huffman()]
FLOAT_ENCODINGS = [
    Trivial(),
    Gorilla(),
    Chimp(),
    Pseudodecimal(),
    ALP(),
    Chunked(),
    BitShuffle(),
    MainlyConstant(),
]
BYTES_ENCODINGS = [Trivial(), Dictionary(), FSST(), Chunked()]
BOOL_ENCODINGS = [Trivial(), SparseBool(), Roaring(), RLE()]


def assert_equal_values(out, expected):
    if isinstance(expected, np.ndarray):
        assert isinstance(out, np.ndarray)
        assert np.array_equal(out, expected)
        if np.issubdtype(expected.dtype, np.floating):
            assert out.dtype == expected.dtype
    elif expected and isinstance(expected[0], np.ndarray):
        assert len(out) == len(expected)
        for a, b in zip(out, expected):
            assert np.array_equal(np.asarray(a), b)
    else:
        assert list(out) == list(expected)


@pytest.mark.parametrize("encoding", INT_ENCODINGS, ids=lambda e: e.name)
@pytest.mark.parametrize(
    "maker", [ints_signed, ints_small, runs], ids=["signed", "small", "runs"]
)
def test_int_roundtrip(encoding, maker):
    data = maker()
    assert_equal_values(decode_blob(encode_blob(data, encoding)), data)


@pytest.mark.parametrize("encoding", NONNEG_ENCODINGS, ids=lambda e: e.name)
def test_nonneg_int_roundtrip(encoding):
    data = ints_small()
    assert_equal_values(decode_blob(encode_blob(data, encoding)), data)


@pytest.mark.parametrize("encoding", FLOAT_ENCODINGS, ids=lambda e: e.name)
@pytest.mark.parametrize("maker", [floats, decimals], ids=["gauss", "decimal"])
def test_float_roundtrip(encoding, maker):
    data = maker()
    assert_equal_values(decode_blob(encode_blob(data, encoding)), data)


@pytest.mark.parametrize("encoding", FLOAT_ENCODINGS, ids=lambda e: e.name)
def test_float32_dtype_preserved(encoding):
    data = floats(200).astype(np.float32)
    out = decode_blob(encode_blob(data, encoding))
    assert out.dtype == np.float32
    assert np.array_equal(out, data)


@pytest.mark.parametrize("encoding", BYTES_ENCODINGS, ids=lambda e: e.name)
def test_bytes_roundtrip(encoding):
    data = strings()
    assert_equal_values(decode_blob(encode_blob(data, encoding)), data)


@pytest.mark.parametrize("encoding", BOOL_ENCODINGS, ids=lambda e: e.name)
def test_bool_roundtrip(encoding):
    data = bools()
    out = decode_blob(encode_blob(data, encoding))
    assert np.array_equal(np.asarray(out, dtype=np.bool_), data)


@pytest.mark.parametrize(
    "encoding",
    [ListEncoding(), SparseListDelta()],
    ids=["list", "sparse_list_delta"],
)
def test_list_roundtrip(encoding):
    data = int_lists()
    assert_equal_values(decode_blob(encode_blob(data, encoding)), data)


@pytest.mark.parametrize(
    "encoding",
    INT_ENCODINGS + NONNEG_ENCODINGS,
    ids=lambda e: e.name,
)
def test_empty_int_roundtrip(encoding):
    data = np.zeros(0, dtype=np.int64)
    out = decode_blob(encode_blob(data, encoding))
    assert len(out) == 0


@pytest.mark.parametrize("encoding", FLOAT_ENCODINGS, ids=lambda e: e.name)
def test_empty_float_roundtrip(encoding):
    out = decode_blob(encode_blob(np.zeros(0, dtype=np.float64), encoding))
    assert len(out) == 0


def test_single_value_roundtrips():
    for enc in INT_ENCODINGS:
        out = decode_blob(encode_blob(np.array([42], dtype=np.int64), enc))
        assert list(out) == [42]


def test_catalog_covers_table2():
    """Every scheme named in the paper's Table 2 has an implementation."""
    names = set(catalog())
    expected = {
        "trivial", "bitshuffle", "rle", "dictionary", "fixed_bit_width",
        "huffman", "nullable", "sparse_bool", "varint", "zigzag", "delta",
        "fastpfor", "fastbp128", "constant", "mainly_constant", "sentinel",
        "chunked", "fsst", "gorilla", "chimp", "pseudodecimal", "alp",
        "roaring",
    }
    assert expected <= names


def test_blob_ids_are_stable_and_unique():
    by_id = {}
    for cls in catalog().values():
        assert cls.id not in by_id, f"duplicate id {cls.id}"
        by_id[cls.id] = cls


class TestComposition:
    """Cascading: children are themselves self-describing blobs."""

    def test_rle_over_dictionary(self):
        data = runs()
        blob = encode_blob(data, RLE(values_child=Dictionary()))
        assert np.array_equal(decode_blob(blob), data)

    def test_dictionary_with_rle_codes(self):
        data = runs()
        blob = encode_blob(data, Dictionary(codes_child=RLE()))
        assert np.array_equal(decode_blob(blob), data)

    def test_chunked_over_bitshuffle_over_floats(self):
        data = floats()
        blob = encode_blob(data, Chunked(BitShuffle(Trivial())))
        assert np.array_equal(decode_blob(blob), data)

    def test_list_with_cascaded_values(self):
        data = int_lists()
        blob = encode_blob(
            data, ListEncoding(values_child=FrameOfReference())
        )
        out = decode_blob(blob)
        for a, b in zip(out, data):
            assert np.array_equal(a, b)

    def test_three_level_nesting(self):
        data = runs()
        blob = encode_blob(
            data, RLE(values_child=Dictionary(codes_child=Chunked()))
        )
        assert np.array_equal(decode_blob(blob), data)


@given(st.lists(st.integers(-(2**40), 2**40), max_size=300))
@settings(max_examples=30, deadline=None)
def test_property_int_catalog(values):
    data = np.array(values, dtype=np.int64)
    for enc in (Trivial(), FixedBitWidth(), ZigZag(), RLE(), Delta(),
                FrameOfReference()):
        assert np.array_equal(decode_blob(encode_blob(data, enc)), data)


@given(
    st.lists(
        st.floats(allow_nan=False, width=64),
        max_size=150,
    )
)
@settings(max_examples=30, deadline=None)
def test_property_float_catalog(values):
    data = np.array(values, dtype=np.float64)
    for enc in (Trivial(), Gorilla(), Chimp(), ALP(), Pseudodecimal()):
        out = decode_blob(encode_blob(data, enc))
        assert np.array_equal(out, data)


@given(st.lists(st.booleans(), max_size=400))
@settings(max_examples=30, deadline=None)
def test_property_bool_catalog(values):
    data = np.array(values, dtype=np.bool_)
    for enc in (SparseBool(), Roaring(), RLE()):
        out = decode_blob(encode_blob(data, enc))
        assert np.array_equal(np.asarray(out, dtype=np.bool_), data)


class TestEdgeCases:
    """Boundary shapes the vectorized kernels must get exactly right:
    single values, all-equal runs, int64 extremes, and IEEE specials.
    """

    @pytest.mark.parametrize(
        "encoding", INT_ENCODINGS + NONNEG_ENCODINGS, ids=lambda e: e.name
    )
    def test_len1_int(self, encoding):
        data = np.array([7], dtype=np.int64)
        assert_equal_values(decode_blob(encode_blob(data, encoding)), data)

    @pytest.mark.parametrize(
        "encoding", FLOAT_ENCODINGS, ids=lambda e: e.name
    )
    def test_len1_float(self, encoding):
        data = np.array([3.25], dtype=np.float64)
        assert_equal_values(decode_blob(encode_blob(data, encoding)), data)

    @pytest.mark.parametrize(
        "encoding", INT_ENCODINGS + NONNEG_ENCODINGS, ids=lambda e: e.name
    )
    def test_all_equal_int(self, encoding):
        data = np.full(513, 42, dtype=np.int64)
        assert_equal_values(decode_blob(encode_blob(data, encoding)), data)

    @pytest.mark.parametrize(
        "encoding", FLOAT_ENCODINGS, ids=lambda e: e.name
    )
    def test_all_equal_float(self, encoding):
        data = np.full(257, -1.5, dtype=np.float64)
        assert_equal_values(decode_blob(encode_blob(data, encoding)), data)

    @pytest.mark.parametrize(
        "encoding", INT_ENCODINGS + NONNEG_ENCODINGS, ids=lambda e: e.name
    )
    def test_int64_max(self, encoding):
        data = np.array([0, 2**63 - 1, 1, 2**63 - 1, 0], dtype=np.int64)
        assert_equal_values(decode_blob(encode_blob(data, encoding)), data)

    @pytest.mark.parametrize(
        "encoding",
        [Trivial(), FixedBitWidth(), ZigZag(), RLE(), Dictionary(),
         Chunked(), BitShuffle()],
        ids=lambda e: e.name,
    )
    def test_int64_min(self, encoding):
        data = np.array([-(2**63), 0, 2**63 - 1], dtype=np.int64)
        assert_equal_values(decode_blob(encode_blob(data, encoding)), data)

    @pytest.mark.parametrize(
        "encoding", FLOAT_ENCODINGS, ids=lambda e: e.name
    )
    def test_float_specials(self, encoding):
        data = np.array(
            [0.0, -0.0, np.inf, -np.inf, np.nan, 1.0, np.nan],
            dtype=np.float64,
        )
        out = decode_blob(encode_blob(data, encoding))
        assert isinstance(out, np.ndarray) and out.dtype == np.float64
        assert np.array_equal(out, data, equal_nan=True)
        # bit-level codecs must keep -0.0 bit-exact; pseudodecimal and
        # mainly_constant operate on values and canonicalize zero sign
        if encoding.name not in {"pseudodecimal", "mainly_constant"}:
            assert np.array_equal(
                out.view(np.uint64), data.view(np.uint64)
            )
