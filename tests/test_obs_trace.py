"""Span tracer tests (``repro.obs.trace``): nesting, exporters, and
the disabled-by-default zero-allocation guardrail.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.core import BullionReader, BullionWriter, Table, WriterOptions
from repro.iosim import SimulatedStorage
from repro.obs.trace import (
    Span,
    Tracer,
    load_trace,
    summarize_events,
)
from repro.obs import trace as trace_mod


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


def _sleep_span(tracer, name, seconds, **attrs):
    with tracer.span(name, **attrs):
        time.sleep(seconds)


class TestSpans:
    def test_nesting_records_parent_ids(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        recs = {r.name: r for r in tracer.records()}
        assert recs["inner"].parent == recs["outer"].sid
        assert recs["outer"].parent is None
        assert inner.sid != outer.sid

    def test_attrs_at_open_and_via_set(self, tracer):
        with tracer.span("scan.file", file="f-1") as s:
            s.set(rows=100)
        (rec,) = tracer.records()
        assert rec.attrs == {"file": "f-1", "rows": 100}

    def test_sibling_spans_share_a_parent(self, tracer):
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        recs = {r.name: r for r in tracer.records()}
        assert recs["a"].parent == recs["parent"].sid
        assert recs["b"].parent == recs["parent"].sid

    def test_exception_still_closes_and_records(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert [r.name for r in tracer.records()] == ["inner", "outer"]
        assert tracer._stack() == []  # nothing leaked on the thread

    def test_threads_get_independent_stacks(self, tracer):
        def worker():
            with tracer.span("worker.span"):
                pass

        with tracer.span("main.span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        recs = {r.name: r for r in tracer.records()}
        # the worker span must not adopt the main thread's open span
        assert recs["worker.span"].parent is None
        assert recs["worker.span"].tid != recs["main.span"].tid


class TestDisabled:
    def test_disabled_tracer_constructs_no_spans(self):
        t = Tracer()  # disabled by default
        before = Span.constructed
        for _ in range(100):
            with t.span("scan.fetch_chunk", col=1):
                pass
        assert Span.constructed == before
        assert t.records() == []

    def test_default_tracer_is_disabled_by_default(self):
        assert trace_mod.enabled() is False

    def test_full_scan_with_tracing_disabled_allocates_zero_spans(self):
        """The overhead guardrail: a real multi-group filtered scan
        through the instrumented reader constructs no Span objects
        while tracing is off."""
        storage = SimulatedStorage("guardrail")
        writer = BullionWriter(
            storage, options=WriterOptions(rows_per_page=50, rows_per_group=100)
        )
        writer.open()
        writer.write_batch(
            Table({
                "x": np.arange(400, dtype=np.int64),
                "y": np.arange(400, dtype=np.float64),
            })
        )
        writer.finish()
        assert trace_mod.enabled() is False
        before = Span.constructed
        from repro.expr import col

        reader = BullionReader(storage)
        total = sum(
            b.num_rows for b in reader.scan(["x", "y"], where=col("x") >= 100)
        )
        assert total == 300
        assert Span.constructed == before, (
            "disabled tracing must not allocate spans on the scan path"
        )


class TestExporters:
    def _trace(self):
        t = Tracer()
        t.enable()
        with t.span("outer", table="events"):
            _sleep_span(t, "inner", 0.002)
            time.sleep(0.001)
        return t

    def test_jsonl_roundtrip(self, tmp_path):
        t = self._trace()
        path = tmp_path / "spans.jsonl"
        t.export_jsonl(path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["name"] for e in lines] == ["outer", "inner"]
        events = load_trace(path)
        assert {e["name"] for e in events} == {"outer", "inner"}
        inner = next(e for e in events if e["name"] == "inner")
        outer = next(e for e in events if e["name"] == "outer")
        assert inner["parent"] == outer["sid"]

    def test_chrome_export_shape(self, tmp_path):
        t = self._trace()
        path = tmp_path / "trace.json"
        t.export_chrome(path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert all(e["ph"] == "X" and e["pid"] == 1 for e in events)
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        # correct nesting: the child interval sits inside the parent's
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1
        assert outer["args"] == {"table": "events"}

    def test_summarize_self_time_both_parentage_modes(self, tmp_path):
        t = self._trace()
        jsonl, chrome = tmp_path / "s.jsonl", tmp_path / "t.json"
        t.export_jsonl(jsonl)
        t.export_chrome(chrome)
        for path in (jsonl, chrome):
            rows = summarize_events(load_trace(path))
            by_name = {r["name"]: r for r in rows}
            outer, inner = by_name["outer"], by_name["inner"]
            assert inner["self_us"] == pytest.approx(inner["total_us"])
            # outer self-time excludes the inner span's duration
            assert outer["self_us"] == pytest.approx(
                outer["total_us"] - inner["total_us"], abs=1.0
            )
            assert outer["self_us"] < outer["total_us"]
