"""Behavioural tests for the integer encodings (beyond round-trip)."""

import numpy as np
import pytest

from repro.encodings import (
    Constant,
    Delta,
    Dictionary,
    EncodingError,
    FastBP128,
    FastPFOR,
    FixedBitWidth,
    FrameOfReference,
    Huffman,
    MainlyConstant,
    RLE,
    Varint,
    decode_blob,
    encode_blob,
)
from repro.encodings.dictionary import MASK_CODE
from repro.encodings.rle import compute_runs


class TestFixedBitWidth:
    def test_compresses_small_range(self):
        data = np.arange(1000, dtype=np.int64) % 8  # 3 bits each
        blob = encode_blob(data, FixedBitWidth())
        assert len(blob) < 1000  # ~375 bytes + header vs 8000 raw

    def test_base_offsets_negative_values(self):
        data = np.array([-100, -99, -98], dtype=np.int64)
        blob = encode_blob(data, FixedBitWidth())
        assert np.array_equal(decode_blob(blob), data)
        # width should be 2 bits (range 0..2), not 64
        assert len(blob) < 30

    def test_fixed_base_pins_zero(self):
        data = np.array([1, 2, 3], dtype=np.int64)
        blob = encode_blob(data, FixedBitWidth(fixed_base=0))
        # payload layout: id, base i64, width, count — base must be 0
        import struct

        assert struct.unpack_from("<q", blob, 1)[0] == 0

    def test_fixed_base_rejects_below_base(self):
        with pytest.raises(ValueError, match="below fixed base"):
            encode_blob(
                np.array([-1], dtype=np.int64), FixedBitWidth(fixed_base=0)
            )

    def test_constant_column_is_tiny(self):
        blob = encode_blob(np.full(10000, 7, dtype=np.int64), FixedBitWidth())
        assert len(blob) < 32  # width 0: header only


class TestVarint:
    def test_small_values_one_byte_each(self):
        data = np.arange(100, dtype=np.int64)
        blob = encode_blob(data, Varint())
        assert len(blob) == 1 + 8 + 100  # id + count + 1B/value

    def test_negative_rejected_with_hint(self):
        with pytest.raises(EncodingError, match="zigzag"):
            encode_blob(np.array([-1], dtype=np.int64), Varint())


class TestRLE:
    def test_compute_runs(self):
        values, lengths = compute_runs(
            np.array([2, 2, 2, 6, 6, 6, 6, 6, 3], dtype=np.int64)
        )
        assert list(values) == [2, 6, 3]
        assert list(lengths) == [3, 5, 1]

    def test_paper_example_sequence(self):
        """The §2.1 example: 222666663 encodes as runs (2,3)(6,5)(3,1)."""
        data = np.array([2, 2, 2, 6, 6, 6, 6, 6, 3], dtype=np.int64)
        blob = encode_blob(data, RLE())
        assert np.array_equal(decode_blob(blob), data)
        # deleting one '6' and re-encoding must not grow (the paper's
        # motivation for drop-and-realign over masking)
        dropped = np.array([2, 2, 2, 6, 6, 6, 6, 3], dtype=np.int64)
        assert len(encode_blob(dropped, RLE())) <= len(blob)

    def test_corrupt_counts_detected(self):
        blob = bytearray(encode_blob(np.array([1, 1, 2], dtype=np.int64), RLE()))
        blob[2] = 99  # clobber total count (u64 at offset 2)
        with pytest.raises(EncodingError, match="corrupt"):
            decode_blob(bytes(blob))

    def test_long_runs_compress_well(self):
        data = np.repeat(np.arange(5, dtype=np.int64), 10000)
        assert len(encode_blob(data, RLE())) < 200


class TestDictionary:
    def test_codes_reserve_mask_zero(self):
        data = np.array([10, 20, 10], dtype=np.int64)
        blob = encode_blob(data, Dictionary())
        from repro.encodings.base import ByteReader
        from repro.encodings.dictionary import Dictionary as D

        tag, dictionary, codes = D.decode_codes(ByteReader(blob, offset=1))
        assert MASK_CODE not in codes  # live data never uses the mask slot
        assert codes.min() >= 1

    def test_masked_code_decodes_to_mask_value(self):
        data = np.array([10, 20, 10], dtype=np.int64)
        blob = encode_blob(data, Dictionary())
        from repro.core.deletion import mask_page_payload

        result = mask_page_payload(blob, np.array([1]))
        out = decode_blob(result.payload)
        assert list(out) == [10, 0, 10]  # masked -> 0 for ints

    def test_bytes_dictionary(self):
        data = [b"x", b"y", b"x", b"x"]
        assert decode_blob(encode_blob(data, Dictionary())) == data

    def test_high_cardinality_still_roundtrips(self):
        data = np.arange(5000, dtype=np.int64)
        assert np.array_equal(decode_blob(encode_blob(data, Dictionary())), data)


class TestDeltaAndFOR:
    def test_delta_on_sorted_is_small(self):
        data = np.cumsum(np.ones(10000, dtype=np.int64))
        blob = encode_blob(data, Delta())
        assert len(blob) < 10500  # ~1 byte per delta

    def test_for_random_access_structure(self):
        """FOR blocks are independent: decoding is per-block, matching
        the §2.1 claim that FOR 'supports random access to any element'."""
        data = np.arange(1000, dtype=np.int64) * 3
        blob = encode_blob(data, FrameOfReference(block_size=64))
        assert np.array_equal(decode_blob(blob), data)

    def test_for_bad_block_size(self):
        with pytest.raises(ValueError):
            FrameOfReference(block_size=0)


class TestHuffman:
    def test_skewed_distribution_beats_bitpack(self):
        rng = np.random.default_rng(0)
        # ~90% zeros: entropy far below the 4 bits bitpacking needs
        data = rng.choice(
            np.arange(16, dtype=np.int64),
            p=[0.9] + [0.1 / 15] * 15,
            size=20000,
        )
        h = len(encode_blob(data, Huffman()))
        b = len(encode_blob(data, FixedBitWidth()))
        assert h < b

    def test_cardinality_guardrail(self):
        data = np.arange(70000, dtype=np.int64)
        with pytest.raises(EncodingError, match="symbols"):
            encode_blob(data, Huffman())

    def test_single_symbol(self):
        data = np.full(100, 9, dtype=np.int64)
        assert np.array_equal(decode_blob(encode_blob(data, Huffman())), data)


class TestConstantFamily:
    def test_constant_rejects_varying(self):
        with pytest.raises(EncodingError, match="non-constant"):
            encode_blob(np.array([1, 2], dtype=np.int64), Constant())

    def test_constant_bytes(self):
        data = [b"same"] * 50
        assert decode_blob(encode_blob(data, Constant())) == data

    def test_mainly_constant_keeps_exceptions(self):
        data = np.full(1000, 3, dtype=np.int64)
        data[[17, 502, 999]] = [7, 8, 9]
        blob = encode_blob(data, MainlyConstant())
        assert np.array_equal(decode_blob(blob), data)
        assert len(blob) < 200

    def test_mainly_constant_bytes(self):
        data = [b"hot"] * 20 + [b"cold"] + [b"hot"] * 20
        assert decode_blob(encode_blob(data, MainlyConstant())) == data


class TestFastPFOR:
    def test_outliers_do_not_inflate_blocks(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 16, 12800).astype(np.int64)  # 4-bit data
        data[::128] = 2**40  # one huge outlier per miniblock
        pf = len(encode_blob(data, FastPFOR()))
        bp = len(encode_blob(data, FastBP128()))
        assert pf < bp / 2  # bp must pay 41 bits everywhere, pfor patches

    def test_negative_rejected(self):
        with pytest.raises(EncodingError, match="non-negative"):
            encode_blob(np.array([-5], dtype=np.int64), FastPFOR())
