"""Unit tests for the unified expression engine (repro.expr)."""

import json
import math

import numpy as np
import pytest

from repro.core.reader import Predicate
from repro.expr import (
    And,
    Comparison,
    Expr,
    ExprError,
    In,
    Interval,
    Not,
    Or,
    ParseError,
    TriState,
    as_expr,
    col,
    evaluate,
    evaluate_interval,
    interval_from_stats,
    might_match,
    parse,
)


class TestAst:
    def test_builder_produces_expected_nodes(self):
        e = (col("a") > 1) & ~(col("b") == 2.5) | col("c").isin([1, 2])
        assert isinstance(e, Or)
        left, right = e.args
        assert isinstance(left, And)
        assert left.args[0] == Comparison(">", "a", 1)
        assert left.args[1] == Not(Comparison("==", "b", 2.5))
        assert right == In("c", (1, 2))

    def test_columns_collects_every_reference(self):
        e = ((col("a") > 1) | (col("b") <= 0)) & ~(col("c") != 5)
        assert e.columns() == {"a", "b", "c"}

    def test_between_is_inclusive_range(self):
        e = col("x").between(3, 7)
        assert e == And((Comparison(">=", "x", 3), Comparison("<=", "x", 7)))

    def test_truth_testing_is_rejected(self):
        with pytest.raises(TypeError, match="truth value"):
            bool(col("a") > 1)

    def test_bad_literals_and_ops_rejected(self):
        with pytest.raises(ExprError):
            Comparison("~", "a", 1)
        with pytest.raises(ExprError):
            Comparison("==", "a", [1, 2])
        with pytest.raises(ExprError):
            In("a", ())

    def test_as_expr_accepts_legacy_predicate(self):
        e = as_expr(Predicate("q", 0.5, None))
        assert e == Comparison(">=", "q", 0.5)
        e = as_expr(Predicate("q", 1, 9))
        assert e == col("q").between(1, 9)
        assert as_expr(e) is e
        with pytest.raises(ExprError):
            as_expr(Predicate("q"))
        with pytest.raises(ExprError):
            as_expr("q > 3")

    def test_predicate_to_expr_shim(self):
        assert Predicate("x", max_value=4).to_expr() == Comparison(
            "<=", "x", 4
        )


class TestJsonSerde:
    @pytest.mark.parametrize(
        "expr",
        [
            col("a") > 1,
            col("a") == 2.5,
            col("s") == "spam",
            col("s") != b"\x00\xff raw",
            col("b") == True,  # noqa: E712
            col("c").isin([1, 2, 3]),
            col("t").isin(["x", b"y"]),
            (col("a") > 1) & (col("b") < 2) & ~(col("c") == 0),
            (col("a") >= -1) | col("s").isin(["u", "v"]),
        ],
    )
    def test_round_trip(self, expr):
        assert Expr.from_json(expr.to_json()) == expr

    def test_json_is_plain_data(self):
        doc = json.loads(((col("a") > 1) & (col("s") == b"z")).to_json())
        assert doc["type"] == "and"
        assert doc["args"][1]["value"] == {"$bytes": "eg=="}

    def test_malformed_json_raises(self):
        with pytest.raises(ExprError):
            Expr.from_json("{not json")
        with pytest.raises(ExprError):
            Expr.from_json('{"type": "frobnicate"}')
        with pytest.raises(ExprError):
            Expr.from_json('{"type": "cmp", "op": ">"}')
        with pytest.raises(ExprError):
            Expr.from_json(
                '{"type": "cmp", "op": ">", "column": "a",'
                ' "value": {"$oops": 1}}'
            )


class TestParser:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a > 1", col("a") > 1),
            ("a = 1", col("a") == 1),
            ("a.b_c <= -2.5e3", col("a.b_c") <= -2500.0),
            ("s == 'spam'", col("s") == "spam"),
            ('s != "with \\" quote"', col("s") != 'with " quote'),
            ("a in (1, 2, 3)", col("a").isin([1, 2, 3])),
            ("x between 3 and 7", col("x").between(3, 7)),
            ("flag == true and a < inf", (col("flag") == True) & (col("a") < math.inf)),  # noqa: E712
            ("not a > 1", ~(col("a") > 1)),
            (
                "a > 1 and b < 2 or not c == 0",
                ((col("a") > 1) & (col("b") < 2)) | ~(col("c") == 0),
            ),
            ("(a > 1 or b < 2) and c == 0", ((col("a") > 1) | (col("b") < 2)) & (col("c") == 0)),
            ("100 < price", col("price") > 100),
            ("1 >= q", col("q") <= 1),
        ],
    )
    def test_grammar(self, text, expected):
        assert parse(text) == expected

    def test_parse_round_trips_through_json(self):
        e = parse("price > 100 and region in (3, 5, 7) or not q <= 0.5")
        assert Expr.from_json(e.to_json()) == e

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "a >", "> 1", "a in ()", "a in 1", "a between 1",
         "a == == 1", "(a > 1", "a > 1 extra", "$bad > 1", "a ! 1"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestVectorEvaluate:
    def test_all_ops_match_numpy(self):
        vals = np.array([-3, 0, 2, 7, 7], dtype=np.int64)
        cols = {"x": vals}
        for op, fn in [
            ("==", lambda v: v == 2),
            ("!=", lambda v: v != 7),
            ("<", lambda v: v < 2),
            ("<=", lambda v: v <= 2),
            (">", lambda v: v > 0),
            (">=", lambda v: v >= 7),
        ]:
            lit = {"==": 2, "!=": 7, "<": 2, "<=": 2, ">": 0, ">=": 7}[op]
            out = evaluate(Comparison(op, "x", lit), cols)
            assert out.dtype == np.bool_
            assert np.array_equal(out, fn(vals))

    def test_boolean_combinators(self):
        cols = {"x": np.arange(10, dtype=np.int64)}
        e = ((col("x") >= 2) & (col("x") < 8)) | (col("x") == 9)
        expected = ((cols["x"] >= 2) & (cols["x"] < 8)) | (cols["x"] == 9)
        assert np.array_equal(evaluate(e, cols), expected)
        assert np.array_equal(evaluate(~e, cols), ~expected)

    def test_in_over_ints_and_strings(self):
        cols = {
            "x": np.array([1, 5, 9], dtype=np.int64),
            "s": [b"a", b"b", b"c"],
        }
        assert np.array_equal(
            evaluate(col("x").isin([5, 9, 100]), cols),
            np.array([False, True, True]),
        )
        assert np.array_equal(
            evaluate(col("s").isin(["a", b"c"]), cols),
            np.array([True, False, True]),
        )

    def test_nan_comparisons_follow_ieee(self):
        vals = np.array([1.0, np.nan, 3.0])
        cols = {"x": vals}
        assert np.array_equal(
            evaluate(col("x") > 0, cols), np.array([True, False, True])
        )
        assert np.array_equal(
            evaluate(col("x") == np.nan, cols),
            np.array([False, False, False]),
        )
        assert np.array_equal(
            evaluate(col("x") != 1.0, cols), np.array([False, True, True])
        )

    def test_string_literal_encodes_to_bytes(self):
        cols = {"s": [b"spam", b"eggs"]}
        assert np.array_equal(
            evaluate(col("s") == "spam", cols), np.array([True, False])
        )
        assert np.array_equal(
            evaluate(col("s") >= b"f", cols), np.array([True, False])
        )

    def test_missing_column_raises(self):
        with pytest.raises(KeyError):
            evaluate(col("nope") > 1, {"x": np.arange(3)})

    def test_type_mismatches_raise(self):
        from repro.expr import VectorEvalError

        with pytest.raises(VectorEvalError):
            evaluate(col("x") == "s", {"x": np.arange(3)})
        with pytest.raises(VectorEvalError):
            evaluate(col("s") == 3, {"s": [b"a"]})
        with pytest.raises(VectorEvalError):
            evaluate(col("l") == 3, {"l": [np.arange(2), np.arange(3)]})

    def test_int_column_vs_fractional_literal(self):
        cols = {"x": np.array([1, 2, 3], dtype=np.int64)}
        assert np.array_equal(
            evaluate(col("x") > 1.5, cols), np.array([False, True, True])
        )


class TestIntervalEvaluate:
    def test_tristate_algebra(self):
        A, M, N = TriState.ALWAYS, TriState.MAYBE, TriState.NEVER
        assert (A & M) is M and (A & N) is N and (M & N) is N
        assert (A | M) is A and (M | N) is M and (N | N) is N
        assert (~A) is N and (~N) is A and (~M) is M

    def test_comparison_verdicts(self):
        iv = {"x": Interval(10.0, 20.0)}
        assert evaluate_interval(col("x") < 10, iv) is TriState.NEVER
        assert evaluate_interval(col("x") < 25, iv) is TriState.ALWAYS
        assert evaluate_interval(col("x") < 15, iv) is TriState.MAYBE
        assert evaluate_interval(col("x") >= 10, iv) is TriState.ALWAYS
        assert evaluate_interval(col("x") > 20, iv) is TriState.NEVER
        assert evaluate_interval(col("x") == 5, iv) is TriState.NEVER
        assert evaluate_interval(col("x") == 15, iv) is TriState.MAYBE
        assert evaluate_interval(col("x") != 5, iv) is TriState.ALWAYS
        assert evaluate_interval(
            col("x").isin([1, 2, 15]), iv
        ) is TriState.MAYBE
        assert evaluate_interval(
            col("x").isin([1, 2, 3]), iv
        ) is TriState.NEVER

    def test_point_interval_equality(self):
        point = {"x": Interval(7.0, 7.0, maybe_nan=False, eq_exact=True)}
        assert evaluate_interval(col("x") == 7, point) is TriState.ALWAYS
        assert evaluate_interval(col("x") != 7, point) is TriState.NEVER
        fuzzy = {"x": Interval(7.0, 7.0, maybe_nan=True)}
        assert evaluate_interval(col("x") == 7, fuzzy) is TriState.MAYBE
        assert evaluate_interval(col("x") != 7, fuzzy) is TriState.MAYBE

    def test_missing_stats_are_maybe(self):
        assert evaluate_interval(col("x") > 1, {}) is TriState.MAYBE
        assert evaluate_interval(col("x") > 1, {"x": None}) is TriState.MAYBE
        assert might_match(col("x") > 1, {"x": None})

    def test_not_never_prunes_through_missing_stats(self):
        stats = {"x": None}
        assert evaluate_interval(~(col("x") > 1), stats) is TriState.MAYBE

    def test_nan_stat_bounds_never_prune(self):
        stats = {"x": Interval(float("nan"), float("nan"))}
        for e in [col("x") > 1, col("x") == 0, ~(col("x") <= 5)]:
            assert evaluate_interval(e, stats) is TriState.MAYBE

    def test_nan_literal(self):
        iv = {"x": Interval(0.0, 1.0)}
        assert evaluate_interval(col("x") == float("nan"), iv) is TriState.NEVER
        assert evaluate_interval(col("x") != float("nan"), iv) is TriState.ALWAYS
        assert evaluate_interval(col("x") > float("nan"), iv) is TriState.NEVER

    def test_float_kind_blocks_always_for_ordered_ops(self):
        # a float extent may hide NaN rows; NaN fails ordered ops, so
        # "every row matches" can never be proven from stats alone
        iv = {"x": interval_from_stats(0.0, 1.0, "float")}
        assert evaluate_interval(col("x") <= 2.0, iv) is TriState.MAYBE
        # ...but "no row matches" still prunes
        assert evaluate_interval(col("x") > 2.0, iv) is TriState.NEVER
        # and != stays ALWAYS: NaN != v too
        assert evaluate_interval(col("x") != 9.0, iv) is TriState.ALWAYS

    def test_infinite_bounds(self):
        iv = {"x": interval_from_stats(0.0, float("inf"), "float")}
        assert evaluate_interval(col("x") >= 1e300, iv) is TriState.MAYBE
        assert evaluate_interval(col("x") < 0.0, iv) is TriState.NEVER

    def test_string_literal_vs_numeric_stats_is_maybe(self):
        iv = {"x": interval_from_stats(0, 1, "int")}
        assert evaluate_interval(col("x") == "zzz", iv) is TriState.MAYBE


class TestInt64PrecisionBoundary:
    """float64-stored int stats must stay conservative past 2**53."""

    def test_exact_below_boundary(self):
        iv = {"x": interval_from_stats(5.0, 2.0**53 - 2, "int")}
        assert evaluate_interval(col("x") == 4, iv) is TriState.NEVER
        assert evaluate_interval(
            col("x") == 2**53 - 2, iv
        ) is TriState.MAYBE
        assert evaluate_interval(
            col("x") > 2**53 - 2, iv
        ) is TriState.NEVER

    def test_boundary_value_is_widened(self):
        # 2**53 + 1 rounds to 2**53 in float64: a stored max of exactly
        # 2**53 may describe a chunk whose true max is 2**53 + 1
        stored = float(2**53)
        iv = {"x": interval_from_stats(stored, stored, "int")}
        assert evaluate_interval(col("x") == 2**53 + 1, iv) is TriState.MAYBE
        assert evaluate_interval(col("x") > 2**53, iv) is TriState.MAYBE
        # equality exactness is dropped at the boundary too
        assert evaluate_interval(col("x") != 2**53, iv) is TriState.MAYBE

    def test_large_bounds_widen_by_ulp(self):
        true_value = 2**60 + 1
        stored = float(true_value)  # rounds
        assert int(stored) != true_value
        iv = {"x": interval_from_stats(stored, stored, "int")}
        assert evaluate_interval(
            col("x") == true_value, iv
        ) is not TriState.NEVER

    def test_small_ints_keep_point_equality(self):
        iv = {"x": interval_from_stats(42.0, 42.0, "int")}
        assert evaluate_interval(col("x") == 42, iv) is TriState.ALWAYS
        assert evaluate_interval(col("x") != 42, iv) is TriState.NEVER

    def test_negative_boundary(self):
        stored = float(-(2**53))
        iv = {"x": interval_from_stats(stored, -5.0, "int")}
        assert evaluate_interval(
            col("x") == -(2**53) - 1, iv
        ) is TriState.MAYBE
