"""Tests for repro.util.varint: LEB128 and zigzag."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.varint import (
    decode_varint,
    decode_varint_array,
    encode_varint,
    encode_varint_array,
    zigzag_decode,
    zigzag_encode,
)


class TestScalarVarint:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (300, b"\xac\x02"),  # the classic LEB128 worked example
            (2**64 - 1, b"\xff" * 9 + b"\x01"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert encode_varint(value) == expected
        decoded, used = decode_varint(expected)
        assert decoded == value
        assert used == len(expected)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(b"\x80")

    def test_oversized_raises(self):
        with pytest.raises(ValueError, match="64 bits"):
            decode_varint(b"\xff" * 10 + b"\x01")

    def test_decode_at_offset(self):
        data = b"\xff" + encode_varint(300)
        value, used = decode_varint(data, offset=1)
        assert value == 300
        assert used == len(data)


class TestArrayVarint:
    def test_roundtrip_mixed_sizes(self):
        values = np.array(
            [0, 1, 127, 128, 16384, 2**32, 2**63, 2**64 - 1], dtype=np.uint64
        )
        data = encode_varint_array(values)
        # batch encoding must match scalar encoding byte-for-byte
        assert data == b"".join(encode_varint(int(v)) for v in values)
        out, used = decode_varint_array(data, len(values))
        assert used == len(data)
        assert np.array_equal(out, values)

    def test_empty(self):
        assert encode_varint_array(np.zeros(0, dtype=np.uint64)) == b""
        out, used = decode_varint_array(b"", 0)
        assert used == 0 and len(out) == 0

    def test_trailing_bytes_ignored(self):
        data = encode_varint_array(np.array([5, 6], dtype=np.uint64))
        out, used = decode_varint_array(data + b"\xde\xad", 2)
        assert used == len(data)
        assert list(out) == [5, 6]

    def test_truncated_stream_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varint_array(b"\x01", 2)

    @given(st.lists(st.integers(0, 2**64 - 1), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        arr = np.array(values, dtype=np.uint64)
        out, _ = decode_varint_array(encode_varint_array(arr), len(arr))
        assert np.array_equal(out, arr)


class TestZigZag:
    @pytest.mark.parametrize(
        "signed,unsigned",
        [(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4), (2**62, 2**63)],
    )
    def test_known_mappings(self, signed, unsigned):
        assert int(zigzag_encode(np.array([signed]))[0]) == unsigned
        assert int(zigzag_decode(np.array([unsigned], dtype=np.uint64))[0]) == signed

    @given(st.lists(st.integers(-(2**63), 2**63 - 1), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, values):
        arr = np.array(values, dtype=np.int64)
        assert np.array_equal(zigzag_decode(zigzag_encode(arr)), arr)
