"""Cross-module integration tests: the paper's workflows end to end."""

import numpy as np
import pytest

from repro.core import (
    BullionReader,
    BullionWriter,
    Table,
    WriterOptions,
    delete_rows,
)
from repro.encodings import SparseListDelta
from repro.iosim import SimulatedStorage
from repro.quantization import FloatFormat, QuantizationPolicy, quantize
from repro.workloads import (
    AdsDataConfig,
    SlidingWindowConfig,
    build_ads_schema,
    generate_ads_table,
    generate_click_sequences,
)


class TestAdsPipeline:
    """Write a (sampled) ads table, project 10%, delete a user, verify."""

    @pytest.fixture(scope="class")
    def ads_file(self):
        schema = build_ads_schema(scale=0.002)
        table = generate_ads_table(schema, AdsDataConfig(rows=128))
        dev = SimulatedStorage()
        footer = BullionWriter(
            dev,
            schema=schema,
            options=WriterOptions(rows_per_page=64, rows_per_group=128),
        ).write(table)
        return dev, schema, table, footer

    def test_ten_percent_projection(self, ads_file):
        dev, schema, table, _f = ads_file
        reader = BullionReader(dev)
        names = [c.name for c in schema.physical_columns()]
        subset = names[:: max(1, len(names) // max(1, len(names) // 10))][
            : max(1, len(names) // 10)
        ]
        out = reader.project(subset)
        assert out.num_rows == 128
        for name in subset:
            assert name in out.columns

    def test_gdpr_delete_then_read(self, ads_file):
        dev, schema, table, _f = ads_file
        delete_rows(dev, range(10, 20))  # one user's contiguous rows
        reader = BullionReader(dev)
        assert reader.verify()
        names = [c.name for c in schema.physical_columns()][:5]
        out = reader.project(names)
        assert out.num_rows == 118


class TestSparseFeatureFile:
    def test_sparse_delta_in_file_with_deletion(self):
        rows, _ = generate_click_sequences(
            SlidingWindowConfig(n_users=8, events_per_user=32, window_size=64)
        )
        table = Table({"clk_seq_cids": rows})
        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=64,
                rows_per_group=128,
                encodings={"clk_seq_cids": SparseListDelta()},
            ),
        ).write(table)
        report = delete_rows(dev, [5, 6, 7])
        out = BullionReader(dev).project(["clk_seq_cids"])
        assert out.num_rows == len(rows) - 3
        expected = [r for i, r in enumerate(rows) if i not in (5, 6, 7)]
        for a, b in zip(out.column("clk_seq_cids"), expected):
            assert np.array_equal(np.asarray(a), b)


class TestQuantizedStorage:
    def test_quantized_columns_roundtrip_through_file(self):
        rng = np.random.default_rng(0)
        raw = {f"emb_{i}": rng.normal(size=256).astype(np.float32) for i in range(4)}
        policy = QuantizationPolicy(
            assignments={
                "emb_0": FloatFormat.FP16,
                "emb_1": FloatFormat.BF16,
                "emb_2": FloatFormat.FP8_E4M3,
            },
            default=FloatFormat.FP32,
        )
        qt = policy.apply(raw)
        table = Table(dict(qt.stored))
        dev = SimulatedStorage()
        BullionWriter(dev).write(table)
        out = BullionReader(dev).project(list(raw))
        # stored representations must round-trip bit-exactly
        for name in raw:
            got = np.asarray(out.column(name))
            want = np.asarray(qt.stored[name])
            if want.dtype in (np.uint16, np.uint8):
                assert np.array_equal(got.astype(want.dtype), want)
            else:
                assert np.array_equal(got, want)

    def test_quantized_file_is_smaller(self):
        rng = np.random.default_rng(1)
        raw = {f"f{i}": rng.normal(size=2000).astype(np.float32) for i in range(8)}
        dev32, dev16 = SimulatedStorage(), SimulatedStorage()
        BullionWriter(dev32).write(Table(dict(raw)))
        q = {k: quantize(v, FloatFormat.FP16) for k, v in raw.items()}
        BullionWriter(dev16).write(Table(q))
        assert dev16.size < dev32.size * 0.6


class TestCascadeFileIntegration:
    def test_cascade_policy_shrinks_file(self):
        rng = np.random.default_rng(2)
        table = Table(
            {
                "ids": np.sort(rng.integers(0, 10**9, 4000)).astype(np.int64),
                "cat": np.resize(
                    np.repeat(rng.integers(0, 6, 80), rng.integers(5, 40, 80)),
                    4000,
                ).astype(np.int64),
                "price": np.round(rng.uniform(0, 500, 4000), 2),
            }
        )
        trivial_dev, cascade_dev = SimulatedStorage(), SimulatedStorage()
        BullionWriter(
            trivial_dev, options=WriterOptions(encoding_policy="trivial")
        ).write(table)
        BullionWriter(
            cascade_dev, options=WriterOptions(encoding_policy="cascade")
        ).write(table)
        assert cascade_dev.size < trivial_dev.size / 2
        out = BullionReader(cascade_dev).project(["ids", "cat", "price"])
        assert out.equals(table)
