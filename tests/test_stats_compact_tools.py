"""Tests for footer statistics, row-group pruning, compaction, tools."""

import numpy as np
import pytest

from repro.core import (
    BullionReader,
    BullionWriter,
    Table,
    WriterOptions,
    delete_rows,
)
from repro.core.compact import compact, merge
from repro.iosim import SimulatedStorage
from repro.tools import describe, inspect_file


def _file(presorted=True, n=1000, stats=True):
    rng = np.random.default_rng(13)
    score = rng.random(n)
    if presorted:
        score = np.sort(score)[::-1]
    table = Table(
        {
            "score": score,
            "id": np.arange(n, dtype=np.int64),
            "tag": [b"t%d" % (i % 5) for i in range(n)],
        }
    )
    dev = SimulatedStorage()
    BullionWriter(
        dev,
        options=WriterOptions(
            rows_per_page=100, rows_per_group=100, collect_statistics=stats
        ),
    ).write(table)
    return dev, table


class TestChunkStats:
    def test_stats_recorded_for_numeric(self):
        dev, table = _file()
        footer = BullionReader(dev).footer
        col = footer.find_column("score")
        stats = footer.chunk_stats(col, 0)
        rg = table.column("score")[:100]
        assert stats is not None
        assert stats.min_value == pytest.approx(float(rg.min()))
        assert stats.max_value == pytest.approx(float(rg.max()))

    def test_no_stats_for_bytes(self):
        dev, _t = _file()
        footer = BullionReader(dev).footer
        assert footer.chunk_stats(footer.find_column("tag"), 0) is None

    def test_stats_optional(self):
        dev, _t = _file(stats=False)
        footer = BullionReader(dev).footer
        assert footer.chunk_stats(footer.find_column("score"), 0) is None

    def test_prune_on_presorted_selects_prefix(self):
        dev, table = _file(presorted=True)
        reader = BullionReader(dev)
        kept = reader.prune_row_groups("score", min_value=0.9)
        assert kept == list(range(len(kept)))  # a prefix of the groups
        assert len(kept) < reader.footer.num_row_groups / 2

    def test_prune_on_unsorted_keeps_most(self):
        dev, _t = _file(presorted=False)
        reader = BullionReader(dev)
        kept = reader.prune_row_groups("score", min_value=0.9)
        assert len(kept) == reader.footer.num_row_groups

    def test_prune_correctness(self):
        """Pruning must never lose qualifying rows."""
        dev, table = _file(presorted=True)
        reader = BullionReader(dev)
        kept = reader.prune_row_groups("score", min_value=0.7)
        got = reader.project(["score"], row_groups=kept)
        got_scores = np.asarray(got.column("score"))
        expected = np.asarray(table.column("score"))
        assert (got_scores >= 0.7).sum() == (expected >= 0.7).sum()

    def test_prune_max_value(self):
        dev, _t = _file(presorted=True)
        reader = BullionReader(dev)
        kept = reader.prune_row_groups("score", max_value=0.1)
        assert kept  # the tail groups
        assert kept[-1] == reader.footer.num_row_groups - 1


class TestCompaction:
    def test_compact_reclaims_deleted_rows(self):
        dev, table = _file()
        delete_rows(dev, range(100, 300))
        target = SimulatedStorage()
        report = compact(dev, target)
        assert report.rows_in == 1000
        assert report.rows_out == 800
        assert report.bytes_out < report.bytes_in
        out = BullionReader(target).project(["id"])
        keep = np.ones(1000, dtype=bool)
        keep[100:300] = False
        assert np.array_equal(out.column("id"), np.arange(1000)[keep])
        assert BullionReader(target).footer.deleted_count() == 0

    def test_merge_files(self):
        dev1, t1 = _file(n=200)
        dev2, t2 = _file(n=300)
        target = SimulatedStorage()
        report = merge([dev1, dev2], target)
        assert report.rows_out == 500
        out = BullionReader(target).project(["id"])
        assert list(out.column("id")) == list(range(200)) + list(range(300))

    def test_merge_mismatched_rejected(self):
        dev1, _ = _file(n=100)
        dev2 = SimulatedStorage()
        BullionWriter(dev2).write(Table({"other": np.zeros(5, dtype=np.int64)}))
        with pytest.raises(ValueError, match="different columns"):
            merge([dev1, dev2], SimulatedStorage())

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge([], SimulatedStorage())


class TestInspector:
    def test_inspect_file_structure(self):
        dev, _t = _file()
        report = inspect_file(dev)
        assert report.num_rows == 1000
        assert report.num_columns == 3
        assert report.checksums_valid
        assert report.data_bytes < report.file_bytes
        by_name = {c.name: c for c in report.columns}
        assert by_name["id"].encodings == {"fixed_bit_width": 10}
        assert by_name["score"].n_pages == 10

    def test_inspect_tracks_deletions(self):
        dev, _t = _file()
        delete_rows(dev, [1, 2, 3])
        report = inspect_file(dev)
        assert report.deleted_rows == 3
        assert report.checksums_valid

    def test_describe_renders(self):
        dev, _t = _file()
        text = describe(dev)
        assert "bullion file" in text
        assert "fixed_bit_width" in text
        assert "rows: 1,000" in text

    def test_inspect_detects_corruption(self):
        dev, _t = _file()
        footer = BullionReader(dev).footer
        page = footer.page(0)
        dev.corrupt(page.offset + 20, b"\xff\xff")
        assert not inspect_file(dev).checksums_valid
