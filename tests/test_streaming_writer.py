"""Tests for the incremental writer: open()/write_batch()/finish()."""

import numpy as np
import pytest

from repro.core import (
    BullionReader,
    BullionWriter,
    Field,
    LogicalType,
    Schema,
    Table,
    WriterOptions,
)
from repro.iosim import SimulatedStorage
from repro.quantization import FloatFormat, QuantizationPolicy


def _table(n=1037):
    rng = np.random.default_rng(11)
    return Table(
        {
            "i": rng.integers(-1000, 1000, n).astype(np.int64),
            "f": rng.normal(size=n),
            "s": [f"r{i}".encode() for i in range(n)],
            "l": [
                rng.integers(0, 9, i % 4).astype(np.int64) for i in range(n)
            ],
        }
    )


def _stream_write(table, split, **opts):
    dev = SimulatedStorage()
    writer = BullionWriter(dev, options=WriterOptions(**opts)).open()
    for start in range(0, table.num_rows, split):
        writer.write_batch(table.slice(start, min(start + split, table.num_rows)))
    writer.finish()
    return dev, writer


class TestByteIdenticalToOneShot:
    @pytest.mark.parametrize("split", [1, 7, 100, 256, 999])
    def test_any_batching_matches_one_shot(self, split):
        table = _table()
        opts = dict(rows_per_page=64, rows_per_group=256)
        one = SimulatedStorage()
        BullionWriter(one, options=WriterOptions(**opts)).write(table)
        dev, _w = _stream_write(table, split, **opts)
        assert dev.raw_bytes() == one.raw_bytes()

    def test_quantized_batching_matches_one_shot(self):
        table = _table(400)
        opts = dict(
            rows_per_page=50,
            rows_per_group=100,
            quantization=QuantizationPolicy(default=FloatFormat.FP16),
        )
        one = SimulatedStorage()
        BullionWriter(one, options=WriterOptions(**opts)).write(table)
        dev, _w = _stream_write(table, 33, **opts)
        assert dev.raw_bytes() == one.raw_bytes()

    def test_schema_enforced_per_batch(self):
        schema = Schema([Field("a", LogicalType.parse("int64"))])
        writer = BullionWriter(SimulatedStorage(), schema=schema).open()
        writer.write_batch(Table({"a": np.arange(5, dtype=np.int64)}))
        with pytest.raises(ValueError, match="mismatch"):
            writer.write_batch(Table({"b": np.arange(5, dtype=np.int64)}))

    def test_mismatched_batch_columns_rejected(self):
        writer = BullionWriter(SimulatedStorage()).open()
        writer.write_batch(Table({"a": np.arange(5, dtype=np.int64)}))
        with pytest.raises(ValueError, match="do not match"):
            writer.write_batch(Table({"z": np.arange(5, dtype=np.int64)}))


class TestBoundedMemory:
    def test_never_holds_more_than_one_group_of_encoded_pages(self):
        """The acceptance criterion, asserted via instrumentation."""
        table = _table(4096)
        rows_per_page, rows_per_group = 64, 512
        dev, writer = _stream_write(
            table, 300, rows_per_page=rows_per_page, rows_per_group=rows_per_group
        )
        stats = writer.stats
        pages_per_group = (
            rows_per_group // rows_per_page
        ) * table.num_columns
        assert 0 < stats.peak_encoded_pages_held <= pages_per_group
        # the streaming writer is stricter still: one page at a time
        assert stats.peak_encoded_pages_held == 1
        assert stats.groups_flushed == 8
        assert stats.pages_written > 0
        assert stats.encoded_pages_held == 0  # nothing left behind

    def test_buffered_rows_bounded_by_group_plus_batch(self):
        table = _table(4096)
        _dev, writer = _stream_write(
            table, 300, rows_per_page=64, rows_per_group=512
        )
        assert writer.stats.peak_buffered_rows < 512 + 300


class TestLifecycle:
    def test_write_batch_auto_opens(self):
        dev = SimulatedStorage()
        writer = BullionWriter(dev)
        writer.write_batch(Table({"a": np.arange(3, dtype=np.int64)}))
        footer = writer.finish()
        assert footer.num_rows == 3

    def test_double_finish_rejected(self):
        writer = BullionWriter(SimulatedStorage())
        writer.write(Table({"a": np.arange(3, dtype=np.int64)}))
        with pytest.raises(RuntimeError):
            writer.finish()

    def test_write_after_finish_rejected(self):
        writer = BullionWriter(SimulatedStorage())
        writer.write(Table({"a": np.arange(3, dtype=np.int64)}))
        with pytest.raises(RuntimeError):
            writer.write_batch(Table({"a": np.arange(3, dtype=np.int64)}))

    def test_finish_without_batches_writes_valid_empty_file(self):
        dev = SimulatedStorage()
        footer = BullionWriter(dev).open().finish()
        assert footer.num_rows == 0
        reader = BullionReader(dev)
        assert reader.num_rows == 0
        assert reader.verify()

    def test_finish_without_batches_with_schema_keeps_columns(self):
        schema = Schema(
            [
                Field("a", LogicalType.parse("int64")),
                Field("f", LogicalType.parse("float")),
            ]
        )
        dev = SimulatedStorage()
        writer = BullionWriter(dev, schema=schema)
        writer.open()
        footer = writer.finish()
        assert footer.num_columns == 2
        out = BullionReader(dev).project(["a", "f"])
        assert out.num_rows == 0
        assert out.column("a").dtype == np.int64
        assert out.column("f").dtype == np.float32

    def test_late_list_probe_still_infers_list_type(self):
        """A first batch with only empty lists must not lock in BINARY."""
        dev = SimulatedStorage()
        writer = BullionWriter(
            dev, options=WriterOptions(rows_per_page=4, rows_per_group=8)
        ).open()
        writer.write_batch(
            Table({"l": [np.zeros(0, dtype=np.int64) for _ in range(3)]})
        )
        writer.write_batch(Table({"l": [np.array([1, 2], dtype=np.int64)]}))
        writer.finish()
        got = BullionReader(dev).project(["l"]).column("l")
        assert np.array_equal(np.asarray(got[3]), [1, 2])


class TestEmptyAndTinyTables:
    """Empty-table and single-row round trips as first-class cases."""

    def test_empty_table_all_kinds_roundtrip_with_dtypes(self):
        table = Table(
            {
                "i": np.zeros(0, dtype=np.int64),
                "i32": np.zeros(0, dtype=np.int32),
                "f64": np.zeros(0, dtype=np.float64),
                "f32": np.zeros(0, dtype=np.float32),
                "b": np.zeros(0, dtype=np.bool_),
                "s": [],
            }
        )
        dev = SimulatedStorage()
        BullionWriter(dev).write(table)
        reader = BullionReader(dev)
        out = reader.project(list(table.columns))
        assert out.num_rows == 0
        assert out.column("i").dtype == np.int64
        assert out.column("i32").dtype == np.int32
        assert out.column("f64").dtype == np.float64
        assert out.column("f32").dtype == np.float32
        assert out.column("b").dtype == np.bool_
        assert out.column("s") == []
        assert reader.verify()

    def test_empty_file_has_one_empty_group(self):
        dev = SimulatedStorage()
        footer = BullionWriter(dev).write(Table({"a": np.zeros(0, np.int64)}))
        assert footer.num_rows == 0
        assert BullionReader(dev).footer.num_row_groups == 1
        assert footer.page(0).n_values == 0

    def test_single_row_all_kinds(self):
        table = Table(
            {
                "i": np.array([-5], dtype=np.int64),
                "f": np.array([1.5], dtype=np.float64),
                "s": [b"only"],
                "l": [np.array([9, 8], dtype=np.int64)],
            }
        )
        dev = SimulatedStorage()
        BullionWriter(dev).write(table)
        assert BullionReader(dev).project(list(table.columns)).equals(table)

    def test_single_row_streaming_matches(self):
        table = Table({"a": np.array([7], dtype=np.int64), "s": [b"x"]})
        one = SimulatedStorage()
        BullionWriter(one).write(table)
        dev, _w = _stream_write(table, 1)
        assert dev.raw_bytes() == one.raw_bytes()


class TestBatchKindConsistency:
    def test_dtype_drift_between_batches_rejected(self):
        writer = BullionWriter(SimulatedStorage()).open()
        writer.write_batch(Table({"x": np.arange(5, dtype=np.int64)}))
        with pytest.raises(ValueError, match="kind"):
            writer.write_batch(Table({"x": np.array([1.5, 2.5, 3.5])}))

    def test_array_vs_list_drift_rejected(self):
        writer = BullionWriter(SimulatedStorage()).open()
        writer.write_batch(Table({"x": np.arange(5, dtype=np.int64)}))
        with pytest.raises(ValueError, match="kind"):
            writer.write_batch(Table({"x": [b"oops"]}))

    def test_same_dtype_batches_accepted(self):
        writer = BullionWriter(SimulatedStorage()).open()
        writer.write_batch(Table({"x": np.arange(5, dtype=np.int64)}))
        writer.write_batch(Table({"x": np.arange(5, dtype=np.int64)}))
        assert writer.finish().num_rows == 10
