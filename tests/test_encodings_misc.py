"""Tests for bytes/bool/nullable/list encodings and the sparse delta."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings import (
    EncodingError,
    FSST,
    ListEncoding,
    Nullable,
    Roaring,
    Sentinel,
    SparseBool,
    SparseListDelta,
    decode_blob,
    encode_blob,
    find_overlap,
)
from repro.encodings.roaring import ARRAY_CONTAINER_MAX, BUCKET_SIZE


class TestFSST:
    def test_structured_strings_compress(self):
        data = [
            f"https://shop.example.com/product/{i % 100}/view".encode()
            for i in range(2000)
        ]
        blob = encode_blob(data, FSST())
        raw = sum(len(s) for s in data)
        assert len(blob) < raw  # symbol table finds the shared substrings

    def test_empty_strings(self):
        data = [b"", b"a", b""]
        assert decode_blob(encode_blob(data, FSST())) == data

    def test_binary_with_escape_byte(self):
        data = [bytes([0xFF, 0xFF, 0x00]), bytes(range(256))]
        assert decode_blob(encode_blob(data, FSST())) == data

    @given(st.lists(st.binary(max_size=40), max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_property_roundtrip(self, data):
        assert decode_blob(encode_blob(data, FSST())) == data


class TestSparseBool:
    def test_sparse_uses_positions_mode(self):
        data = np.zeros(100000, dtype=np.bool_)
        data[[5, 999, 70000]] = True
        blob = encode_blob(data, SparseBool())
        assert len(blob) < 100  # far below the 12.5 KB bitmap

    def test_dense_uses_bitmap_mode(self):
        rng = np.random.default_rng(0)
        data = rng.random(8000) < 0.5
        blob = encode_blob(data, SparseBool())
        assert len(blob) <= 8000 // 8 + 32

    def test_rejects_non_bool(self):
        with pytest.raises(EncodingError):
            encode_blob(np.array([1, 0]), SparseBool())


class TestRoaring:
    def test_array_and_bitmap_containers(self):
        data = np.zeros(3 * BUCKET_SIZE, dtype=np.bool_)
        data[:10] = True  # bucket 0: array container
        data[BUCKET_SIZE : BUCKET_SIZE + ARRAY_CONTAINER_MAX + 100] = True  # bitmap
        blob = encode_blob(data, Roaring())
        assert np.array_equal(decode_blob(blob), data)

    def test_cardinality_without_decode(self):
        data = np.zeros(10000, dtype=np.bool_)
        data[::7] = True
        blob = encode_blob(data, Roaring())
        assert Roaring.cardinality(blob[1:]) == int(data.sum())

    def test_all_false(self):
        data = np.zeros(500, dtype=np.bool_)
        assert np.array_equal(decode_blob(encode_blob(data, Roaring())), data)


class TestNullable:
    def test_masked_int_roundtrip(self):
        values = np.ma.MaskedArray(
            np.array([1, 2, 3, 4], dtype=np.int64),
            mask=[False, True, False, True],
        )
        out = decode_blob(encode_blob(values, Nullable()))
        assert np.ma.allequal(out, values)
        assert list(np.ma.getmaskarray(out)) == [False, True, False, True]

    def test_bytes_with_none(self):
        data = [b"a", None, b"c", None, None]
        assert decode_blob(encode_blob(data, Nullable())) == data

    def test_all_null(self):
        values = np.ma.MaskedArray(np.zeros(10, dtype=np.int64), mask=True)
        out = decode_blob(encode_blob(values, Nullable()))
        assert np.ma.getmaskarray(out).all()

    def test_sentinel_picks_unused_value(self):
        values = np.ma.MaskedArray(
            np.array([5, 5, 7], dtype=np.int64), mask=[False, True, False]
        )
        out = decode_blob(encode_blob(values, Sentinel()))
        assert np.ma.allequal(out, values)

    def test_sentinel_requires_masked_input(self):
        with pytest.raises(EncodingError):
            encode_blob(np.array([1, 2], dtype=np.int64), Sentinel())


class TestListEncoding:
    def test_float_lists(self):
        data = [np.array([1.5, 2.5]), np.array([]), np.array([3.0])]
        out = decode_blob(encode_blob(data, ListEncoding()))
        for a, b in zip(out, data):
            assert np.array_equal(a, np.asarray(b))

    def test_bytes_lists(self):
        data = [[b"a", b"bb"], [], [b"ccc"]]
        assert decode_blob(encode_blob(data, ListEncoding())) == data

    def test_nested_int_lists(self):
        data = [
            [np.array([1, 2], dtype=np.int64)],
            [],
            [np.array([3], dtype=np.int64), np.array([4, 5], dtype=np.int64)],
        ]
        out = decode_blob(encode_blob(data, ListEncoding()))
        assert len(out) == 3
        assert np.array_equal(out[2][1], [4, 5])

    def test_ragged_rejected(self):
        with pytest.raises(EncodingError):
            encode_blob(
                [np.zeros((2, 2), dtype=np.int64)], ListEncoding()
            )


class TestFindOverlap:
    def test_identical(self):
        a = np.arange(10, dtype=np.int64)
        ov = find_overlap(a, a.copy())
        assert (ov.start, ov.end, ov.head_len, ov.tail_len) == (0, 10, 0, 0)

    def test_new_head_element(self):
        """Fig 4's second row: one new value at the head."""
        prev = np.array([92, 82, 66, 18], dtype=np.int64)
        cur = np.array([76, 92, 82, 66], dtype=np.int64)
        ov = find_overlap(prev, cur)
        assert (ov.start, ov.end) == (0, 3)
        assert ov.head_len == 1 and ov.tail_len == 0

    def test_dropped_head_element(self):
        """Fig 4's fourth row: window slides, oldest head drops."""
        prev = np.array([76, 92, 82, 66], dtype=np.int64)
        cur = np.array([92, 82, 66, 55], dtype=np.int64)
        ov = find_overlap(prev, cur)
        assert (ov.start, ov.end) == (1, 4)
        assert ov.head_len == 0 and ov.tail_len == 1

    def test_middle_match(self):
        prev = np.array([1, 2, 3, 4], dtype=np.int64)
        cur = np.array([9, 2, 3, 9], dtype=np.int64)
        ov = find_overlap(prev, cur)
        assert (ov.start, ov.end, ov.head_len, ov.tail_len) == (1, 3, 1, 1)

    def test_no_overlap(self):
        ov = find_overlap(
            np.array([1, 2], dtype=np.int64), np.array([8, 9], dtype=np.int64)
        )
        assert ov.length == 0

    def test_empty_inputs(self):
        empty = np.zeros(0, dtype=np.int64)
        assert find_overlap(empty, empty).length == 0
        assert find_overlap(empty, np.array([1], dtype=np.int64)).length == 0


class TestSparseListDelta:
    def _windows(self, n_rows=40, size=32, seed=0):
        rng = np.random.default_rng(seed)
        window = list(rng.integers(0, 10**6, size))
        rows = []
        for _ in range(n_rows):
            new = list(rng.integers(0, 10**6, int(rng.integers(0, 3))))
            window = (new + window)[:size]
            rows.append(np.array(window, dtype=np.int64))
        return rows

    def test_sliding_windows_roundtrip(self):
        rows = self._windows()
        out = decode_blob(encode_blob(rows, SparseListDelta()))
        for a, b in zip(out, rows):
            assert np.array_equal(a, b)

    def test_large_savings_on_windows(self):
        rows = self._windows(n_rows=200, size=256)
        blob = encode_blob(rows, SparseListDelta())
        plain = SparseListDelta.plain_size(rows)
        assert len(blob) < plain / 5  # the §2.2 substantial savings

    def test_reanchors_on_unrelated_rows(self):
        rng = np.random.default_rng(1)
        rows = [
            rng.integers(0, 10**9, 64).astype(np.int64) for _ in range(20)
        ]
        out = decode_blob(encode_blob(rows, SparseListDelta()))
        for a, b in zip(out, rows):
            assert np.array_equal(a, b)

    def test_empty_and_varying_lengths(self):
        rows = [
            np.array([], dtype=np.int64),
            np.array([1, 2, 3], dtype=np.int64),
            np.array([2, 3], dtype=np.int64),
            np.array([], dtype=np.int64),
        ]
        out = decode_blob(encode_blob(rows, SparseListDelta()))
        for a, b in zip(out, rows):
            assert np.array_equal(a, b)

    @given(
        st.lists(
            st.lists(st.integers(0, 50), max_size=12),
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_roundtrip(self, pyrows):
        rows = [np.array(r, dtype=np.int64) for r in pyrows]
        out = decode_blob(encode_blob(rows, SparseListDelta()))
        assert len(out) == len(rows)
        for a, b in zip(out, rows):
            assert np.array_equal(a, b)
