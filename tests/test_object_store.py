"""ObjectStorage backend: cost model, request accounting, coalescing.

The modelled object store charges a fixed round trip per request, so
these tests pin the property the read path engineers against: request
*count* — not bytes — is what the planner and the tiered cache reduce,
and results stay byte-identical under every configuration.
"""

import threading

import numpy as np
import pytest

from repro.core import (
    BullionReader,
    BullionWriter,
    Table,
    TieredChunkCache,
    WriterOptions,
)
from repro.iosim import (
    OBJECT_STORE_MODEL,
    IOStats,
    ObjectRequest,
    ObjectStorage,
    ObjectStorageError,
    SeekModel,
    SimulatedStorage,
)


def _bullion_device(n_rows=1000, n_cols=2, rows_per_group=200):
    dev = SimulatedStorage()
    cols = {
        f"c{i}": np.arange(n_rows, dtype=np.int64) * (i + 1)
        for i in range(n_cols)
    }
    BullionWriter(
        dev,
        options=WriterOptions(
            rows_per_page=rows_per_group // 2, rows_per_group=rows_per_group
        ),
    ).write(Table(cols))
    return dev


def _object_copy(dev, **kwargs):
    inner = SimulatedStorage()
    inner._buf = bytearray(dev.raw_bytes())
    return ObjectStorage(inner, **kwargs)


class TestCostModel:
    def test_request_latency_term(self):
        model = SeekModel(
            seek_latency_s=0.0,
            bandwidth_bytes_per_s=100e6,
            request_latency_s=0.025,
        )
        assert model.request_cost(0, seeked=False) == pytest.approx(0.025)
        assert model.request_cost(100_000_000, seeked=False) == pytest.approx(
            1.025
        )

    def test_default_request_latency_is_zero(self):
        # the historical local-device model: every existing bench
        # number must be unchanged by the new term
        model = SeekModel()
        assert model.request_latency_s == 0.0
        assert model.request_cost(1000) == pytest.approx(
            model.seek_latency_s + 1000 / model.bandwidth_bytes_per_s
        )

    def test_iostats_modelled_time_includes_requests(self):
        stats = IOStats(reads=10, bytes_read=1000, read_seeks=0)
        model = SeekModel(
            seek_latency_s=0.0,
            bandwidth_bytes_per_s=1e9,
            request_latency_s=0.01,
        )
        assert stats.modelled_time(model) == pytest.approx(
            10 * 0.01 + 1000 / 1e9
        )


class TestObjectStorage:
    def test_round_trip_and_request_log(self):
        obj = ObjectStorage(SimulatedStorage())
        obj.append(b"hello world")
        assert obj.pread(0, 5) == b"hello"
        assert obj.pread(6, 5) == b"world"
        assert [r.op for r in obj.requests] == ["PUT", "GET", "GET"]
        assert obj.requests[1] == ObjectRequest(
            "GET", 0, 5, OBJECT_STORE_MODEL.request_cost(5, seeked=False)
        )
        assert obj.request_count == 3
        assert obj.bytes_moved("GET") == 10
        assert obj.bytes_moved() == 21

    def test_large_range_splits_into_capped_requests(self):
        obj = ObjectStorage(SimulatedStorage(), max_request_bytes=1 << 10)
        obj.append(b"x" * 2500)  # one PUT (writes are not capped)
        data = obj.pread(0, 2500)
        assert data == b"x" * 2500
        gets = [r for r in obj.requests if r.op == "GET"]
        assert [(r.offset, r.nbytes) for r in gets] == [
            (0, 1024),
            (1024, 1024),
            (2048, 452),
        ]

    def test_elapsed_accumulates_per_request(self):
        model = SeekModel(
            seek_latency_s=0.0,
            bandwidth_bytes_per_s=1e6,
            request_latency_s=0.5,
        )
        obj = ObjectStorage(
            SimulatedStorage(), model, max_request_bytes=100
        )
        obj.append(b"a" * 250)
        obj.pread(0, 250)  # 3 capped GETs
        # 4 requests x 0.5 s + 500 bytes / 1 MB/s
        assert obj.elapsed_s == pytest.approx(4 * 0.5 + 500 / 1e6)
        obj.reset_accounting()
        assert obj.elapsed_s == 0.0 and obj.request_count == 0

    def test_jitter_adds_seconds(self):
        obj = ObjectStorage(
            SimulatedStorage(),
            SeekModel(0.0, 1e9, 0.01),
            jitter_fn=lambda op, off, n: 0.1,
        )
        obj.append(b"abc")
        assert obj.requests[0].cost_s == pytest.approx(0.01 + 3 / 1e9 + 0.1)

    def test_fault_injection_raises_before_any_byte_moves(self):
        calls = []

        def fail_second(op, offset, nbytes):
            calls.append(op)
            if len(calls) == 2:
                raise ObjectStorageError("injected 503")

        obj = ObjectStorage(SimulatedStorage(), fault_fn=fail_second)
        obj.append(b"payload")
        with pytest.raises(ObjectStorageError):
            obj.pread(0, 7)
        # the failed request was not logged and moved no bytes
        assert [r.op for r in obj.requests] == ["PUT"]
        assert obj.inner.stats.reads == 0

    def test_passthrough_surface(self):
        inner = SimulatedStorage("obj-dev")
        obj = ObjectStorage(inner)
        obj.append(b"0123456789")
        assert obj.name == "obj-dev"
        assert obj.size == len(obj) == 10
        assert obj.stats is inner.stats
        obj.corrupt(0, b"X")
        assert obj.raw_bytes()[:1] == b"X"
        obj.truncate(5)
        assert obj.size == 5

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            ObjectStorage(SimulatedStorage(), max_request_bytes=0)


class TestCoalescing:
    def test_coalescing_halves_data_requests(self):
        dev = _bullion_device(n_rows=1000, n_cols=4, rows_per_group=200)
        naive = _object_copy(dev)
        BullionReader(naive, chunk_cache_size=0, coalesce_gap=-1).scan(
            ["c0", "c1", "c2", "c3"], max_workers=0
        ).to_table()
        coalesced = _object_copy(dev)
        BullionReader(coalesced, chunk_cache_size=0).scan(
            ["c0", "c1", "c2", "c3"], max_workers=0
        ).to_table()
        # 5 groups x 4 cols: 20 per-chunk GETs naive, 5 runs coalesced
        # (+1 footer open each)
        assert naive.request_count == 21
        assert coalesced.request_count == 6
        assert naive.request_count >= 2 * coalesced.request_count

    def test_results_byte_identical_across_configs(self):
        dev = _bullion_device(n_rows=1000, n_cols=3, rows_per_group=200)
        expected = BullionReader(dev).scan(["c0", "c2"]).to_table()
        for kwargs in (
            {"coalesce_gap": -1},
            {"coalesce_gap": 0},
            {"coalesce_gap": 1 << 20},
        ):
            for workers in (0, 4):
                got = BullionReader(
                    _object_copy(dev), chunk_cache_size=0, **kwargs
                ).scan(["c0", "c2"], max_workers=workers).to_table()
                assert got.equals(expected), (kwargs, workers)

    def test_gap_merges_non_adjacent_extents(self):
        # project a strict subset of columns: their chunks are NOT
        # adjacent (the skipped column sits between), so gap=0 cannot
        # merge them but a generous gap can
        dev = _bullion_device(n_rows=400, n_cols=3, rows_per_group=400)
        tight = _object_copy(dev)
        BullionReader(tight, chunk_cache_size=0).scan(
            ["c0", "c2"], max_workers=0
        ).to_table()
        wide = _object_copy(dev)
        BullionReader(wide, chunk_cache_size=0, coalesce_gap=1 << 20).scan(
            ["c0", "c2"], max_workers=0
        ).to_table()
        data_gets = lambda o: sum(1 for r in o.requests if r.op == "GET") - 1
        assert data_gets(tight) == 2  # c0 and c2 separately
        assert data_gets(wide) == 1  # one run spanning the c1 gap
        # the over-read is bounded by the gap: c1's chunk bytes
        assert wide.bytes_moved("GET") > tight.bytes_moved("GET")

    def test_runs_respect_storage_request_cap(self):
        dev = _bullion_device(n_rows=2000, n_cols=2, rows_per_group=500)
        obj = _object_copy(dev, max_request_bytes=4096)
        BullionReader(obj, chunk_cache_size=0).scan(
            ["c0", "c1"], max_workers=0
        ).to_table()
        # the planner caps runs at the storage's max ranged-get size,
        # so no logged request was ever split by the backend
        assert all(r.nbytes <= 4096 for r in obj.requests if r.op == "GET")

    def test_single_metadata_round_trip_at_open(self):
        dev = _bullion_device(n_rows=200, n_cols=2, rows_per_group=100)
        obj = _object_copy(dev)
        BullionReader(obj)
        assert obj.request_count == 1  # tail + footer in one ranged GET


class TestThunderingHerd:
    def test_one_backend_fetch_per_hot_chunk(self):
        """N threads scanning the same table through one shared cache:
        every (column, group) chunk is fetched from the backend exactly
        once — the single-flight guarantee — and every thread still
        gets byte-identical results."""
        n_threads = 8
        dev = _bullion_device(n_rows=1000, n_cols=2, rows_per_group=200)
        expected = BullionReader(dev).scan(["c0", "c1"]).to_table()
        obj = _object_copy(dev)
        cache = TieredChunkCache(64 << 20, name="herd-test", mirror=False)
        # per-chunk requests (coalescing off) so the request log counts
        # backend fetches chunk-for-chunk
        readers = [
            BullionReader(obj, chunk_cache=cache, coalesce_gap=-1)
            for _ in range(n_threads)
        ]
        opens = obj.request_count  # n_threads footer reads
        barrier = threading.Barrier(n_threads)
        results: list = [None] * n_threads
        errors: list = []

        def scan(i, reader):
            try:
                barrier.wait()
                results[i] = reader.scan(
                    ["c0", "c1"], max_workers=2
                ).to_table()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=scan, args=(i, r))
            for i, r in enumerate(readers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        n_chunks = 5 * 2  # 5 groups x 2 columns
        assert obj.request_count - opens == n_chunks
        assert cache.stats.misses == n_chunks
        assert (
            cache.stats.hits + cache.stats.singleflight_waits
            == n_threads * n_chunks - n_chunks
        )
        for res in results:
            assert res is not None and res.equals(expected)
