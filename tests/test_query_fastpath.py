"""Fast-path isolation: metadata answers must not touch data.

The paper's claim is not "aggregation is fast" but "aggregation over
rich metadata needs *zero* data I/O". These tests pin that down with
storage instrumentation rather than trusting the engine's own
accounting (though both are asserted):

* a metadata-answerable query (count/min/max, clean snapshot) opens
  **zero** data files at the catalog level and fetches **zero** data
  chunks at the file level;
* a ``MAYBE`` predicate decodes only the extents the interval
  evaluator could not prove, and a single live deletion vector
  disables the metadata path entirely (footer statistics summarize
  deleted rows too);
* partial-aggregate merge is bit-identical for executor widths
  1/2/8, float sums included — parallelism never changes the answer.
"""

import numpy as np
import pytest

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core import (
    BullionReader,
    BullionWriter,
    Table,
    WriterOptions,
    delete_rows,
)
from repro.expr import col
from repro.iosim import SimulatedStorage


class CountingCatalogStore(MemoryCatalogStore):
    """Memory store that counts ``open_data`` calls and remembers the
    opened storages so tests can total the preads issued *after* the
    open (the shared in-memory storages carry commit-time counters)."""

    def __init__(self) -> None:
        super().__init__("counting")
        self.opened = []

    def open_data(self, file_id: str):
        storage = super().open_data(file_id)
        self.opened.append((storage, storage.stats.reads))
        return storage

    def begin_run(self) -> None:
        self.opened = []

    @property
    def data_reads(self) -> int:
        return sum(s.stats.reads - base for s, base in self.opened)


def _build_catalog(n_files=4, rows=200, sorted_key=True):
    store = CountingCatalogStore()
    cat = CatalogTable.create(store)
    rng = np.random.default_rng(0)
    for k in range(n_files):
        lo = k * rows
        cat.append(
            Table({
                "ts": np.arange(lo, lo + rows, dtype=np.int64),
                "v": rng.normal(size=rows),
                "region": rng.integers(0, 3, rows).astype(np.int32),
            }),
            options=WriterOptions(rows_per_page=25, rows_per_group=50),
        )
    return store, cat


# ---------------------------------------------------------------------------
# zero-I/O assertions (the acceptance criterion)
# ---------------------------------------------------------------------------

class TestManifestOnlyPath:
    def test_count_min_max_opens_no_files(self):
        """count/min/max on a clean snapshot: zero file opens, zero
        data chunks — the manifest alone answers."""
        store, cat = _build_catalog()
        store.begin_run()
        with cat.pin() as snap:
            res = snap.query(["count", "min(ts)", "max(ts)", "min(v)"])
        assert store.opened == [], "manifest-only query opened a file"
        assert res.stats.files_meta_answered == 4
        assert res.stats.data_chunks_fetched == 0
        row = res.rows[0]
        assert row["count(*)"] == 800
        assert row["min(ts)"] == 0 and row["max(ts)"] == 799

    def test_count_under_never_and_always_predicate(self):
        """A predicate proven per file from manifest stats counts with
        zero opens: ALWAYS files count whole, NEVER files vanish."""
        store, cat = _build_catalog()
        store.begin_run()
        with cat.pin() as snap:
            # files hold ts ranges [0,200) [200,400) [400,600) [600,800):
            # < 400 is ALWAYS for the first two, NEVER for the rest
            res = snap.query(["count"], where=col("ts") < 400)
        assert store.opened == []
        assert res.rows[0]["count(*)"] == 400
        assert res.stats.files_meta_answered == 2
        assert res.stats.files_pruned == 2
        assert res.stats.data_chunks_fetched == 0


class TestFooterOnlyPath:
    def test_maybe_file_counts_from_zone_maps(self):
        """A file the manifest can't decide opens its footer but
        answers from zone maps when every row group is provable."""
        store, cat = _build_catalog()
        store.begin_run()
        with cat.pin() as snap:
            # 250 straddles file 2 ([200,400)) on a row-group boundary
            # (groups of 50), so every group is ALWAYS or NEVER
            res = snap.query(["count"], where=col("ts") < 250)
        assert res.rows[0]["count(*)"] == 250
        assert res.stats.files_meta_answered == 1   # file 1: ALWAYS
        assert res.stats.files_footer_answered == 1  # file 2: zone maps
        assert res.stats.files_pruned == 2
        assert res.stats.data_chunks_fetched == 0
        # the opened file read only its footer: one speculative tail
        # pread covers the tail and the footer together
        assert len(store.opened) == 1
        assert store.data_reads == 1

    def test_maybe_group_decodes_only_itself(self):
        """A predicate cutting inside one row group decodes exactly
        that group's filter chunk; provable groups stay metadata."""
        store, cat = _build_catalog()
        store.begin_run()
        with cat.pin() as snap:
            res = snap.query(["count"], where=col("ts") < 230)
        assert res.rows[0]["count(*)"] == 230
        assert res.stats.groups_meta_answered == 0  # file 2's ALWAYS ...
        # file 1 is manifest-answered; inside file 2, group [200,250)
        # is the only MAYBE extent
        assert res.stats.files_decoded == 1
        assert res.stats.scan.chunks_fetched == 1
        assert res.stats.scan.rows_scanned == 50


class TestFallbacks:
    def test_single_deletion_vector_forces_decode(self):
        """One live deletion vector and the same query decodes —
        footer stats summarize deleted rows, so metadata may not
        answer."""
        store, cat = _build_catalog()
        cat.delete(col("ts") == 123)  # file 1 rewritten with a delvec
        store.begin_run()
        with cat.pin() as snap:
            res = snap.query(["count", "min(ts)", "max(ts)"])
        assert res.rows[0]["count(*)"] == 799
        assert res.rows[0]["min(ts)"] == 0
        assert res.rows[0]["max(ts)"] == 799
        # the three untouched files stay manifest-answered; the
        # rewritten one (delvec) must decode
        assert res.stats.files_meta_answered == 3
        assert res.stats.files_decoded == 1
        assert res.stats.data_chunks_fetched > 0

    def test_single_file_deletion_vector(self):
        dev = SimulatedStorage()
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=20, rows_per_group=40)
        ).write(Table({"ts": np.arange(200, dtype=np.int64)}))
        delete_rows(dev, [7])
        reader = BullionReader(dev)
        reads_before = dev.stats.reads
        res = reader.aggregate(["count", "min(ts)"])
        assert res.rows[0]["count(*)"] == 199
        assert res.rows[0]["min(ts)"] == 0
        assert res.stats.files_decoded == 1
        assert res.stats.data_chunks_fetched > 0
        assert dev.stats.reads > reads_before

    def test_maybe_predicate_falls_back(self):
        """Strings carry no statistics: every verdict is MAYBE and the
        whole query decodes, correctly."""
        rows = 200
        store_tag = CountingCatalogStore()
        cat_tag = CatalogTable.create(store_tag)
        cat_tag.append(
            Table({
                "ts": np.arange(rows, dtype=np.int64),
                "tag": [f"t{i % 4}".encode() for i in range(rows)],
            }),
            options=WriterOptions(rows_per_page=25, rows_per_group=50),
        )
        store_tag.begin_run()
        with cat_tag.pin() as snap:
            res = snap.query(["count"], where=col("tag") == "t1")
        assert res.rows[0]["count(*)"] == rows // 4
        assert res.stats.files_meta_answered == 0
        assert res.stats.files_decoded == 1
        assert res.stats.data_chunks_fetched > 0

    def test_reader_zero_chunk_fetches(self):
        """Single-file form of the acceptance criterion: count/min/max
        on a clean file issue no preads beyond the footer open."""
        dev = SimulatedStorage()
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=20, rows_per_group=40)
        ).write(Table({
            "ts": np.arange(500, dtype=np.int64),
            "v": np.linspace(-1, 1, 500),
        }))
        reader = BullionReader(dev)
        reads_before = dev.stats.reads
        res = reader.aggregate(["count", "min(ts)", "max(v)", "count(ts)"])
        assert dev.stats.reads == reads_before, "fast path touched data"
        assert res.stats.data_chunks_fetched == 0
        assert res.stats.files_footer_answered == 1
        assert res.rows[0] == {
            "count(*)": 500, "min(ts)": 0, "max(v)": 1.0,
            "count(ts)": 500,
        }

    def test_forced_decode_matches_fast_path(self):
        store, cat = _build_catalog()
        with cat.pin() as snap:
            fast = snap.query(["count", "min(ts)", "max(v)"])
            slow = snap.query(
                ["count", "min(ts)", "max(v)"], use_metadata=False
            )
        assert fast.rows == slow.rows
        assert fast.stats.data_chunks_fetched == 0
        assert slow.stats.data_chunks_fetched > 0


# ---------------------------------------------------------------------------
# concurrency determinism
# ---------------------------------------------------------------------------

class TestMergeDeterminism:
    """Executor width must never change the answer — bit for bit."""

    def _catalog(self, n_files=6):
        store = MemoryCatalogStore()
        cat = CatalogTable.create(store)
        rng = np.random.default_rng(42)
        for k in range(n_files):
            n = 300
            f = rng.normal(size=n) * 10.0 ** rng.integers(-3, 4)
            f[rng.random(n) < 0.03] = np.nan
            cat.append(
                Table({
                    "ts": np.arange(k * n, (k + 1) * n, dtype=np.int64),
                    "f": f,
                    "g": rng.integers(0, 4, n).astype(np.int32),
                }),
                options=WriterOptions(rows_per_page=25, rows_per_group=75),
            )
        return cat

    @pytest.mark.parametrize("group_by", [None, ["g"]])
    def test_float_sum_bit_identical_across_widths(self, group_by):
        cat = self._catalog()
        results = {}
        with cat.pin() as snap:
            for workers in (1, 2, 8):
                res = snap.query(
                    ["count", "sum(f)", "mean(f)", "min(f)", "max(f)"],
                    group_by=group_by,
                    max_workers=workers,
                )
                results[workers] = res.rows
        base = results[1]
        for workers in (2, 8):
            rows = results[workers]
            assert len(rows) == len(base)
            for a, b in zip(base, rows):
                for name in a:
                    va, vb = a[name], b[name]
                    if isinstance(va, float):
                        # bit-identical, not merely close
                        assert np.float64(va).tobytes() == np.float64(
                            vb
                        ).tobytes(), (name, va, vb, workers)
                    else:
                        assert va == vb

    def test_filtered_float_sum_bit_identical(self):
        cat = self._catalog()
        with cat.pin() as snap:
            outs = [
                snap.query(
                    ["sum(f)", "mean(f)"],
                    where=(col("ts") > 100) & (col("g") != 2),
                    max_workers=w,
                ).rows
                for w in (1, 2, 8)
            ]
        assert outs[0] == outs[1] == outs[2]
