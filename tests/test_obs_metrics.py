"""Unit tests for the metrics registry (``repro.obs.metrics``).

Everything here uses private ``Registry()`` instances, never the
process-wide default — the instrumentation tests cover that one via
snapshot/delta so they compose with whatever ran before them.
"""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    DURATION_BUCKETS,
    Registry,
    RegistrySnapshot,
    load_snapshot,
    validate_metric_name,
)


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------

class TestCounter:
    def test_inc_accumulates(self):
        reg = Registry()
        c = reg.counter("t_things_total")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_negative_increment_rejected(self):
        reg = Registry()
        c = reg.counter("t_things_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)


class TestGauge:
    def test_set_add_setmax(self):
        reg = Registry()
        g = reg.gauge("t_buffered_bytes")
        g.set(10)
        g.add(-3)
        assert g.value == 7
        g.set_max(100)
        g.set_max(50)  # lower value must not regress the high-water mark
        assert g.value == 100


class TestHistogram:
    def test_observe_count_sum_buckets(self):
        reg = Registry()
        h = reg.histogram("t_fetch_seconds", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.05, 5.0):
            h.observe(v)
        child = h.labels() if h.label_names else h._sole()
        assert child.count == 4
        assert child.sum == pytest.approx(5.0555)
        # one observation per bucket, one in the +Inf overflow slot
        assert child.bucket_counts == (1, 1, 1, 1)

    def test_quantile_interpolates_within_bucket(self):
        reg = Registry()
        h = reg.histogram("t_fetch_seconds", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.002, 0.004, 0.05):
            h.observe(v)
        # rank 2 of 4 lands in the (0.001, 0.01] bucket holding 2 obs:
        # 0.001 + (2 - 1)/2 * 0.009 = 0.0055
        assert h.quantile(0.5) == pytest.approx(0.0055)
        # empty histogram: quantile is 0, never an error
        assert reg.histogram("t_idle_seconds").quantile(0.99) == 0.0

    def test_overflow_clamps_to_last_bound(self):
        reg = Registry()
        h = reg.histogram("t_fetch_seconds", buckets=(0.001, 0.01))
        h.observe(99.0)
        assert h.quantile(0.99) == 0.01


# ---------------------------------------------------------------------------
# families + registration
# ---------------------------------------------------------------------------

class TestFamilies:
    def test_labeled_children_are_cached(self):
        reg = Registry()
        fam = reg.counter("io_read_ops_total", labels=("backend",))
        a = fam.labels(backend="file")
        b = fam.labels(backend="file")
        assert a is b
        fam.labels(backend="memory").inc(3)
        a.inc()
        assert fam.labels(backend="file").value == 1
        assert fam.labels(backend="memory").value == 3

    def test_label_set_is_enforced(self):
        reg = Registry()
        fam = reg.counter("io_read_ops_total", labels=("backend",))
        with pytest.raises(ValueError, match="expects labels"):
            fam.labels(wrong="x")
        with pytest.raises(ValueError, match="expects labels"):
            fam.labels()  # missing the backend label entirely

    def test_unlabeled_family_proxies_directly(self):
        reg = Registry()
        reg.counter("a_b_total").inc(2)
        assert reg.counter("a_b_total").value == 2
        with pytest.raises(ValueError, match="is labeled"):
            reg.counter("c_d_total", labels=("x",)).inc()

    def test_registration_is_idempotent(self):
        reg = Registry()
        assert reg.counter("a_b_total") is reg.counter("a_b_total")

    def test_kind_or_label_mismatch_rejected(self):
        reg = Registry()
        reg.counter("a_b_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a_b_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("a_b_total", labels=("x",))


class TestNaming:
    @pytest.mark.parametrize(
        "name",
        [
            "scan_rows_scanned_total",
            "storage_io_bytes",
            "query_aggregate_seconds",
            "cache_hit_ratio",
            "writer_buffered_rows",
            "pool_threads_current",
        ],
    )
    def test_good_names(self, name):
        validate_metric_name(name)

    @pytest.mark.parametrize(
        "name",
        [
            "rows_total",          # two segments: no subsystem
            "scan_rows_count",     # unrecognized unit suffix
            "Scan_rows_total",     # not lowercase
            "scan__rows_total",    # empty segment
            "scan rows total",     # spaces
        ],
    )
    def test_bad_names(self, name):
        with pytest.raises(ValueError):
            validate_metric_name(name)


# ---------------------------------------------------------------------------
# snapshot / delta / reset
# ---------------------------------------------------------------------------

class TestSnapshotDelta:
    def _reg(self):
        reg = Registry()
        reg.counter("a_b_total").inc(5)
        reg.gauge("a_buffered_bytes").set(100)
        reg.histogram("a_wait_seconds", buckets=(0.01, 0.1)).observe(0.05)
        return reg

    def test_snapshot_values(self):
        snap = self._reg().snapshot()
        assert snap.value("a_b_total") == 5
        assert snap.value("a_buffered_bytes") == 100
        assert snap.value("a_wait_seconds") == 1  # histogram -> count
        assert snap.sum("a_wait_seconds") == pytest.approx(0.05)
        assert snap.value("never_registered_total") == 0

    def test_delta_subtracts_counters_keeps_gauges(self):
        reg = self._reg()
        before = reg.snapshot()
        reg.counter("a_b_total").inc(7)
        reg.gauge("a_buffered_bytes").set(42)
        reg.histogram("a_wait_seconds").observe(0.2)
        d = reg.delta(before)
        assert d.value("a_b_total") == 7
        assert d.value("a_buffered_bytes") == 42  # newer reading, not diff
        assert d.value("a_wait_seconds") == 1
        assert d.sum("a_wait_seconds") == pytest.approx(0.2)

    def test_reset_zeroes_but_keeps_handles_alive(self):
        reg = Registry()
        c = reg.counter("a_b_total")
        c.inc(9)
        reg.reset()
        assert c.value == 0
        c.inc()  # the pre-reset handle still feeds the same family
        assert reg.snapshot().value("a_b_total") == 1


# ---------------------------------------------------------------------------
# exports
# ---------------------------------------------------------------------------

class TestExports:
    def _reg(self):
        reg = Registry()
        reg.counter("io_read_ops_total", "reads", labels=("backend",)).labels(
            backend="file"
        ).inc(3)
        h = reg.histogram("io_read_seconds", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        return reg

    def test_prometheus_text(self):
        text = self._reg().export_text()
        assert "# TYPE io_read_ops_total counter" in text
        assert 'io_read_ops_total{backend="file"} 3' in text
        # bucket lines are cumulative; +Inf equals the count
        assert 'io_read_seconds_bucket{le="0.01"} 1' in text
        assert 'io_read_seconds_bucket{le="0.1"} 2' in text
        assert 'io_read_seconds_bucket{le="+Inf"} 2' in text
        assert "io_read_seconds_count 2" in text

    def test_json_roundtrip_through_load_snapshot(self):
        reg = self._reg()
        payload = json.loads(reg.export_json())
        snap = load_snapshot(payload)
        assert snap.value("io_read_ops_total", backend="file") == 3
        assert snap.value("io_read_seconds") == 2
        assert snap.sum("io_read_seconds") == pytest.approx(0.055)
        assert snap.quantile("io_read_seconds", 0.5) == pytest.approx(
            reg.histogram("io_read_seconds").quantile(0.5)
        )

    def test_load_snapshot_unwraps_bench_report_embedding(self):
        payload = {"schema": "bench_report/v1", "metrics": self._reg().export_dict()}
        assert load_snapshot(payload).value("io_read_ops_total", backend="file") == 3
        with pytest.raises(ValueError, match="metrics export"):
            load_snapshot({"schema": "something/else"})

    def test_export_dict_carries_quantiles(self):
        payload = self._reg().export_dict()
        assert payload["schema"] == RegistrySnapshot.SCHEMA
        hist = next(m for m in payload["metrics"] if m["name"] == "io_read_seconds")
        sample = hist["samples"][0]
        assert sample["count"] == 2
        assert {b["le"] for b in sample["buckets"]} == {0.01, 0.1, "+Inf"}
        assert all(math.isfinite(sample[k]) for k in ("p50", "p90", "p99"))

    def test_write_snapshot_file(self, tmp_path):
        path = tmp_path / "metrics.json"
        self._reg().write_snapshot(path)
        snap = load_snapshot(json.loads(path.read_text()))
        assert snap.value("io_read_ops_total", backend="file") == 3


# ---------------------------------------------------------------------------
# thread safety: exact totals under contention
# ---------------------------------------------------------------------------

class TestConcurrency:
    def test_eight_thread_hammer_exact_totals(self):
        reg = Registry()
        counter = reg.counter("hammer_ops_total")
        labeled = reg.counter("hammer_labeled_total", labels=("worker",))
        hist = reg.histogram("hammer_wait_seconds", buckets=DURATION_BUCKETS)
        n_threads, per_thread = 8, 5000
        start = threading.Barrier(n_threads)

        def work(tid: int) -> None:
            mine = labeled.labels(worker=tid % 2)
            start.wait()
            for i in range(per_thread):
                counter.inc()
                mine.inc(2)
                hist.observe(1e-4 * (i % 7))

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = n_threads * per_thread
        assert counter.value == total
        assert labeled.labels(worker=0).value == 2 * (total // 2)
        assert labeled.labels(worker=1).value == 2 * (total // 2)
        child = hist._sole()
        assert child.count == total
        assert sum(child.bucket_counts) == total
        expected_sum = n_threads * sum(1e-4 * (i % 7) for i in range(per_thread))
        assert child.sum == pytest.approx(expected_sum, rel=1e-9)
