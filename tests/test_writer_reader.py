"""End-to-end tests for BullionWriter/BullionReader."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BullionReader,
    BullionWriter,
    Field,
    LogicalType,
    Schema,
    Table,
    WriterOptions,
)
from repro.core.schema import Primitive
from repro.encodings import Dictionary, RLE, SparseListDelta
from repro.iosim import SimulatedStorage


def roundtrip(table: Table, **opts) -> Table:
    dev = SimulatedStorage()
    BullionWriter(dev, options=WriterOptions(**opts)).write(table)
    reader = BullionReader(dev)
    return reader.project(list(table.columns))


class TestRoundTrips:
    def test_all_primitive_kinds(self):
        rng = np.random.default_rng(0)
        n = 300
        table = Table(
            {
                "i64": rng.integers(-(10**9), 10**9, n).astype(np.int64),
                "i32": rng.integers(-100, 100, n).astype(np.int32),
                "f64": rng.normal(size=n),
                "f32": rng.normal(size=n).astype(np.float32),
                "f16": rng.normal(size=n).astype(np.float16),
                "b": rng.random(n) < 0.3,
                "s": [f"row{i}".encode() for i in range(n)],
            }
        )
        out = roundtrip(table, rows_per_page=64, rows_per_group=128)
        assert out.equals(table)
        assert out.column("i32").dtype == np.int32
        assert out.column("f32").dtype == np.float32
        assert out.column("f16").dtype == np.float16

    def test_list_columns(self):
        rng = np.random.default_rng(1)
        table = Table(
            {
                "li": [
                    rng.integers(0, 100, int(rng.integers(0, 6))).astype(np.int64)
                    for _ in range(100)
                ],
                "lf": [
                    rng.normal(size=3).astype(np.float32) for _ in range(100)
                ],
                "lb": [[b"a", b"bb"][: i % 3] for i in range(100)],
            }
        )
        out = roundtrip(table, rows_per_page=32, rows_per_group=64)
        assert out.equals(table)

    def test_nested_list_column(self):
        table = Table(
            {
                "ll": [
                    [np.array([1, 2], dtype=np.int64)],
                    [],
                    [
                        np.array([3], dtype=np.int64),
                        np.array([4, 5], dtype=np.int64),
                    ],
                ]
                * 10
            }
        )
        out = roundtrip(table, rows_per_page=10, rows_per_group=10)
        got = out.column("ll")
        assert len(got) == 30
        assert np.array_equal(np.asarray(got[2][1]), [4, 5])

    def test_empty_table(self):
        table = Table({"a": np.zeros(0, dtype=np.int64)})
        out = roundtrip(table)
        assert out.num_rows == 0

    def test_single_row(self):
        table = Table({"a": np.array([7], dtype=np.int64), "s": [b"x"]})
        assert roundtrip(table).equals(table)

    def test_uneven_final_page_and_group(self):
        table = Table({"a": np.arange(1037, dtype=np.int64)})
        out = roundtrip(table, rows_per_page=100, rows_per_group=400)
        assert np.array_equal(out.column("a"), np.arange(1037))

    @given(
        st.lists(st.integers(-(2**50), 2**50), min_size=1, max_size=300),
        st.sampled_from([16, 64, 128]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_int_roundtrip(self, values, page_rows):
        table = Table({"v": np.array(values, dtype=np.int64)})
        out = roundtrip(
            table, rows_per_page=page_rows, rows_per_group=page_rows * 2
        )
        assert np.array_equal(out.column("v"), values)


class TestEncodingSelection:
    def test_per_column_overrides(self):
        rng = np.random.default_rng(2)
        table = Table(
            {
                "runs": np.resize(
                    np.repeat(rng.integers(0, 5, 20), rng.integers(1, 40, 20)),
                    500,
                ).astype(np.int64),
                "tags": [f"t{i % 5}".encode() for i in range(500)],
            }
        )
        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=250,
                rows_per_group=500,
                encodings={"runs": RLE(), "tags": Dictionary()},
            ),
        ).write(table)
        assert BullionReader(dev).project(["runs", "tags"]).equals(table)

    def test_cascade_policy(self):
        rng = np.random.default_rng(3)
        table = Table(
            {
                "sorted": np.sort(rng.integers(0, 10**6, 600)).astype(np.int64),
                "dec": np.round(rng.normal(size=600), 2),
            }
        )
        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=300, rows_per_group=600, encoding_policy="cascade"
            ),
        ).write(table)
        assert BullionReader(dev).project(["sorted", "dec"]).equals(table)

    def test_sparse_delta_for_click_sequences(self):
        from repro.workloads.sparse import (
            SlidingWindowConfig,
            generate_click_sequences,
        )

        rows, _ = generate_click_sequences(
            SlidingWindowConfig(n_users=10, events_per_user=20, window_size=64)
        )
        table = Table({"clk_seq_cids": rows})
        dev = SimulatedStorage()
        BullionWriter(
            dev,
            options=WriterOptions(
                rows_per_page=100,
                rows_per_group=200,
                encodings={"clk_seq_cids": SparseListDelta()},
            ),
        ).write(table)
        assert BullionReader(dev).project(["clk_seq_cids"]).equals(table)


class TestProjection:
    @pytest.fixture
    def wide_file(self):
        rng = np.random.default_rng(4)
        table = Table(
            {f"f{i}": rng.integers(0, 100, 200).astype(np.int64) for i in range(50)}
        )
        dev = SimulatedStorage()
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=100, rows_per_group=200)
        ).write(table)
        return dev, table

    def test_projection_reads_only_selected_columns(self, wide_file):
        dev, table = wide_file
        dev.stats.reset()
        reader = BullionReader(dev)
        after_open = dev.stats.bytes_read
        reader.project(["f3"])
        data_bytes = dev.stats.bytes_read - after_open
        # a single column's data is ~1/50th of the file
        assert data_bytes < dev.size / 25

    def test_projection_values_match(self, wide_file):
        dev, table = wide_file
        out = BullionReader(dev).project(["f7", "f42"])
        assert np.array_equal(out.column("f7"), table.column("f7"))
        assert np.array_equal(out.column("f42"), table.column("f42"))

    def test_row_group_subset(self):
        table = Table({"a": np.arange(400, dtype=np.int64)})
        dev = SimulatedStorage()
        BullionWriter(
            dev, options=WriterOptions(rows_per_page=100, rows_per_group=100)
        ).write(table)
        out = BullionReader(dev).project(["a"], row_groups=[1, 3])
        assert list(out.column("a")) == list(range(100, 200)) + list(
            range(300, 400)
        )

    def test_schema_roundtrip_through_file(self):
        schema = Schema(
            [
                Field("x", LogicalType.parse("list<int64>")),
                Field("y", LogicalType.parse("struct<list<int64>, list<float>>")),
            ]
        )
        rng = np.random.default_rng(5)
        table = Table(
            {
                "x": [rng.integers(0, 9, 2).astype(np.int64) for _ in range(20)],
                "y.f0": [rng.integers(0, 9, 2).astype(np.int64) for _ in range(20)],
                "y.f1": [rng.normal(size=2).astype(np.float32) for _ in range(20)],
            }
        )
        dev = SimulatedStorage()
        BullionWriter(dev, schema=schema).write(table)
        reader = BullionReader(dev)
        assert reader.schema().census() == schema.census()
        assert reader.footer.column_type(2).primitive == Primitive.FLOAT32


class TestOptionsValidation:
    def test_group_must_be_page_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            WriterOptions(rows_per_page=100, rows_per_group=150)

    def test_bad_compliance_level(self):
        with pytest.raises(ValueError, match="level"):
            WriterOptions(compliance_level=3)

    def test_verify_detects_corruption(self):
        table = Table({"a": np.arange(500, dtype=np.int64)})
        dev = SimulatedStorage()
        footer = BullionWriter(dev).write(table)
        assert BullionReader(dev).verify()
        page = footer.page(0)
        dev.corrupt(page.offset + 20, b"\xde\xad\xbe\xef")
        assert not BullionReader(dev).verify()
