"""Concurrency differential harness (the PR's core guarantee).

N client threads fire randomized scan and query plans at a live server
while a writer thread keeps committing appends, keyed upserts, deletes
and compactions.  Every response is recorded as raw frame bytes along
with the snapshot id the server chose.  Afterwards, each recorded
``(snapshot_id, canonical plan)`` pair is replayed single-threaded on
a fresh :class:`PinnedSnapshot` through the same payload builders —
the replay bytes must equal the served bytes **exactly**.

That byte-identity is only a meaningful oracle because commits are
copy-on-write (a pinned snapshot's files are immutable by
construction) and the wire format is canonical (one logical response
has one byte representation).  Any torn read, stale cache entry,
cross-request state bleed or non-deterministic iteration order in the
server shows up as a byte diff.
"""

from __future__ import annotations

import random
import threading

import numpy as np
import pytest

from repro.catalog import CatalogTable, CommitConflict, MemoryCatalogStore
from repro.expr import parse as parse_expr
from repro.core.table import Table
from repro.server import BullionServer, ServerClient, TableService
from repro.server import protocol

ROWS_PER_FILE = 60

WHERE_POOL = (
    None,
    "region >= 2",
    "v > 0.0",
    "region = 1 and v > -0.5",
    "ts < 90",
)
AGG_POOL = (
    ["count"],
    ["count", "sum(region)"],
    ["min(v)", "max(v)"],
    ["sum(v)", "mean(v)"],
)
COLUMN_POOL = (["ts"], ["ts", "v"], ["v", "region"], ["ts", "v", "region"])


def _batch(lo: int, rng) -> Table:
    return Table({
        "ts": np.arange(lo, lo + ROWS_PER_FILE, dtype=np.int64),
        "v": rng.normal(size=ROWS_PER_FILE),
        "region": rng.integers(0, 5, size=ROWS_PER_FILE).astype(np.int32),
    })


def _build():
    store = MemoryCatalogStore()
    table = CatalogTable.create(store)
    rng = np.random.default_rng(11)
    for k in range(2):
        table.append(_batch(k * ROWS_PER_FILE, rng))
    return store, table


class _Writer(threading.Thread):
    """Keeps committing randomized mutations until stopped."""

    def __init__(self, table: CatalogTable):
        super().__init__(name="differential-writer", daemon=True)
        self.table = table
        self.stop = threading.Event()
        self.commits = 0
        self.error = None

    def run(self) -> None:
        rng = np.random.default_rng(23)
        pyrng = random.Random(23)
        next_lo = 2 * ROWS_PER_FILE
        try:
            while not self.stop.is_set():
                op = pyrng.choice(("append", "upsert", "delete", "compact"))
                try:
                    if op == "append":
                        self.table.append(_batch(next_lo, rng))
                        next_lo += ROWS_PER_FILE
                    elif op == "upsert":
                        head = self.table.current_snapshot()
                        hi = sum(f.row_count for f in head.files)
                        keys = rng.choice(
                            max(hi, 1), size=min(10, max(hi, 1)),
                            replace=False,
                        ).astype(np.int64)
                        self.table.upsert(
                            Table({
                                "ts": np.sort(keys),
                                "v": rng.normal(size=keys.size),
                                "region": rng.integers(
                                    0, 5, size=keys.size
                                ).astype(np.int32),
                            }),
                            key="ts",
                        )
                    elif op == "delete":
                        lo = int(rng.integers(0, max(next_lo, 1)))
                        self.table.delete(
                            parse_expr(f"ts >= {lo} and ts < {lo + 7}")
                        )
                    else:
                        self.table.compact(min_deleted_fraction=0.01)
                    self.commits += 1
                except (CommitConflict, ValueError):
                    # conflicting writer or empty upsert window: the
                    # race itself is the point, losing it is fine
                    continue
        except BaseException as exc:  # pragma: no cover - diagnostics
            self.error = exc


class _Client(threading.Thread):
    """One tenant: randomized plans, every response byte-recorded."""

    def __init__(self, host, port, seed, requests):
        super().__init__(name=f"differential-client-{seed}", daemon=True)
        self.host, self.port = host, port
        self.seed = seed
        self.requests = requests
        self.records = []
        self.error = None

    def run(self) -> None:
        try:
            rng = random.Random(self.seed)
            with ServerClient(self.host, self.port, timeout=60.0) as c:
                for _ in range(self.requests):
                    if rng.random() < 0.5:
                        doc = {
                            "aggregates": rng.choice(AGG_POOL),
                            "where": rng.choice(WHERE_POOL),
                        }
                        if rng.random() < 0.4:
                            doc["group_by"] = ["region"]
                        reply = c.query(
                            "events",
                            doc["aggregates"],
                            where=doc["where"],
                            group_by=doc.get("group_by"),
                        )
                        self.records.append((
                            "query",
                            reply.snapshot_id,
                            protocol.canonical_query_plan(doc),
                            [reply.raw],
                        ))
                    else:
                        doc = {
                            "columns": rng.choice(COLUMN_POOL),
                            "where": rng.choice(WHERE_POOL),
                            "batch_size": rng.choice(
                                (None, 32, 77, 256)
                            ),
                        }
                        reply = c.scan(
                            "events",
                            doc["columns"],
                            where=doc["where"],
                            batch_size=doc["batch_size"],
                        )
                        self.records.append((
                            "scan",
                            reply.snapshot_id,
                            protocol.canonical_scan_plan(doc),
                            reply.raw_frames,
                        ))
        except BaseException as exc:  # pragma: no cover - diagnostics
            self.error = exc


@pytest.mark.parametrize("n_clients", [1, 4, 16])
def test_concurrent_serving_is_byte_identical_to_replay(n_clients):
    _store, table = _build()
    service = TableService(
        {"events": table},
        workers=4,
        max_queue=64,
        queue_timeout_s=60.0,
        default_deadline_s=60.0,
    )
    server = BullionServer(service)
    writer = _Writer(table)
    clients = [
        _Client(server.host, server.port, seed=100 + i, requests=8)
        for i in range(n_clients)
    ]
    try:
        writer.start()
        for c in clients:
            c.start()
        for c in clients:
            c.join(timeout=120.0)
            assert not c.is_alive(), "client thread wedged"
    finally:
        writer.stop.set()
        writer.join(timeout=120.0)
        server.close()
    assert writer.error is None, f"writer crashed: {writer.error!r}"
    for c in clients:
        assert c.error is None, f"{c.name} failed: {c.error!r}"

    # single-threaded replay of every (snapshot_id, plan) pair; the
    # server stack is closed, so this is the plain library path
    records = [r for c in clients for r in c.records]
    assert len(records) == 8 * n_clients
    sids = {sid for _k, sid, _p, _f in records}
    for kind, sid, plan, frames in records:
        pin = table.pin(snapshot_id=sid)
        try:
            if kind == "query":
                assert frames == [
                    protocol.replay_query_frame(pin, sid, plan)
                ]
            else:
                assert frames == protocol.replay_scan_frames(
                    pin, sid, plan
                )
        finally:
            pin.release()
    if max(sids) > min(sids):
        # the harness only proves something if writers really landed
        # commits while clients were reading
        assert writer.commits > 0
