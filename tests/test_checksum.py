"""Merkle-tree checksum tests (§2.1, Fig 2)."""

import pytest

from repro.core.checksum import MerkleTree, full_file_checksum
from repro.util.hashing import hash_bytes


def make_pages(n=12, size=100):
    return [bytes([i % 256]) * size for i in range(n)]


class TestBuild:
    def test_structure(self):
        pages = make_pages(12)
        tree = MerkleTree.build(pages, [4, 4, 4])
        assert len(tree.page_hashes) == 12
        assert len(tree.group_hashes) == 3
        assert tree.verify_structure()

    def test_group_mismatch_rejected(self):
        with pytest.raises(ValueError, match="pages_per_group"):
            MerkleTree.build(make_pages(5), [4, 4])

    def test_group_of_page(self):
        tree = MerkleTree.build(make_pages(10), [3, 3, 4])
        assert tree.group_of_page(0) == 0
        assert tree.group_of_page(2) == 0
        assert tree.group_of_page(3) == 1
        assert tree.group_of_page(9) == 2
        with pytest.raises(IndexError):
            tree.group_of_page(10)


class TestIncrementalUpdate:
    def test_update_changes_path_to_root(self):
        pages = make_pages()
        tree = MerkleTree.build(pages, [4, 4, 4])
        old_root = tree.root
        old_other_group = tree.group_hashes[2]
        update = tree.update_page(5, b"rewritten!")
        assert tree.root != old_root
        assert tree.group_hashes[2] == old_other_group  # untouched sibling
        assert update.group == 1
        assert update.nodes_recomputed == 3
        assert tree.verify_structure()

    def test_update_matches_full_rebuild(self):
        pages = make_pages()
        tree = MerkleTree.build(pages, [4, 4, 4])
        pages[7] = b"new page payload"
        tree.update_page(7, pages[7])
        rebuilt = MerkleTree.build(pages, [4, 4, 4])
        assert tree.root == rebuilt.root
        assert tree.group_hashes == rebuilt.group_hashes

    def test_incremental_hashes_far_fewer_bytes(self):
        """Fig 2's point: page-level update vs whole-file rehash."""
        pages = make_pages(n=64, size=4096)
        tree = MerkleTree.build(pages, [16] * 4)
        update = tree.update_page(3, b"x" * 4096)
        _checksum, full_bytes = full_file_checksum(pages)
        assert update.payload_bytes_hashed < full_bytes / 50

    def test_verify_page(self):
        pages = make_pages()
        tree = MerkleTree.build(pages, [6, 6])
        assert tree.verify_page(2, pages[2])
        assert not tree.verify_page(2, b"tampered")


class TestTamperDetection:
    def test_structure_check_catches_stale_parent(self):
        tree = MerkleTree.build(make_pages(), [4, 4, 4])
        tree.page_hashes[0] = hash_bytes(b"evil")  # leaf changed, parents not
        assert not tree.verify_structure()
