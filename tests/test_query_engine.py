"""Unit tests for ``repro.query``: plans, group-by, validation, API.

The differential suite (``test_query_differential``) proves results
match brute force; these tests pin the *interface*: spec parsing,
plan validation errors, output ordering, result helpers, and the
time-travel / plan-object entry points.
"""

import numpy as np
import pytest

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core import BullionReader, BullionWriter, Table, WriterOptions
from repro.expr import col
from repro.iosim import SimulatedStorage
from repro.query import (
    AggregateSpec,
    PlanError,
    QueryPlan,
    as_aggregate,
)


def _reader(table, rows_per_page=20, rows_per_group=40):
    dev = SimulatedStorage()
    BullionWriter(
        dev,
        options=WriterOptions(
            rows_per_page=rows_per_page, rows_per_group=rows_per_group
        ),
    ).write(table)
    return BullionReader(dev)


class TestAggregateSpec:
    @pytest.mark.parametrize(
        "text,fn,column",
        [
            ("count", "count", None),
            ("count(*)", "count", None),
            ("COUNT( * )", "count", None),
            ("count(clicks)", "count", "clicks"),
            ("sum(price)", "sum", "price"),
            ("Min(a.f0)", "min", "a.f0"),
            ("max(x)", "max", "x"),
            ("mean(x)", "mean", "x"),
        ],
    )
    def test_parse(self, text, fn, column):
        spec = AggregateSpec.parse(text)
        assert (spec.fn, spec.column) == (fn, column)

    @pytest.mark.parametrize(
        "text", ["", "frobnicate(x)", "sum", "sum()", "mean", "count(a,b)",
                 "sum(x) extra"]
    )
    def test_parse_rejects(self, text):
        with pytest.raises(PlanError):
            AggregateSpec.parse(text)

    def test_canonical_names(self):
        assert AggregateSpec.parse("count").name == "count(*)"
        assert AggregateSpec.parse("sum(x)").name == "sum(x)"
        assert as_aggregate("min(y)") == AggregateSpec("min", "y")

    def test_plan_build_rejects_duplicates(self):
        with pytest.raises(PlanError):
            QueryPlan.build(["count", "count(*)"])
        with pytest.raises(PlanError):
            QueryPlan.build(["count"], group_by=["g", "g"])
        with pytest.raises(PlanError):
            QueryPlan.build([])

    def test_scan_columns_cover_all_layers(self):
        plan = QueryPlan.build(
            ["count", "sum(v)"],
            where=col("ts") > 3,
            group_by=["g"],
        )
        assert plan.scan_columns() == ["g", "v", "ts"]


class TestValidation:
    def _table(self):
        return Table({
            "i": np.arange(50, dtype=np.int64),
            "f": np.linspace(0, 1, 50),
            "tag": [b"x"] * 50,
            "vec": [np.arange(3, dtype=np.int64)] * 50,
        })

    def test_sum_on_string_column(self):
        reader = _reader(self._table())
        with pytest.raises(PlanError, match="string"):
            reader.aggregate(["sum(tag)"])

    def test_aggregate_on_list_column(self):
        reader = _reader(self._table())
        with pytest.raises(PlanError, match="list"):
            reader.aggregate(["min(vec)"])

    def test_group_by_float_column(self):
        reader = _reader(self._table())
        with pytest.raises(PlanError, match="float"):
            reader.aggregate(["count"], group_by=["f"])

    def test_group_by_list_column(self):
        reader = _reader(self._table())
        with pytest.raises(PlanError, match="list"):
            reader.aggregate(["count"], group_by=["vec"])

    def test_unknown_column(self):
        reader = _reader(self._table())
        with pytest.raises(KeyError):
            reader.aggregate(["sum(absent)"])
        with pytest.raises(KeyError):
            reader.aggregate(["count"], where=col("absent") > 1,
                             use_metadata=False)

    def test_count_of_string_column_is_fine(self):
        reader = _reader(self._table())
        res = reader.aggregate(["count(tag)"])
        assert res.rows[0]["count(tag)"] == 50

    def test_plan_object_and_loose_args_conflict(self):
        reader = _reader(self._table())
        plan = QueryPlan.build(["count"])
        with pytest.raises(PlanError):
            reader.aggregate(plan, group_by=["i"])


class TestGroupBy:
    def test_multi_key_ordering_and_values(self):
        n = 120
        t = Table({
            "a": np.tile(np.array([2, 0, 1], dtype=np.int32), n // 3),
            "tag": [b"y" if i % 2 else b"x" for i in range(n)],
            "v": np.arange(n, dtype=np.int64),
        })
        reader = _reader(t)
        res = reader.aggregate(
            ["count", "sum(v)"], group_by=["a", "tag"]
        )
        keys = [(r["a"], r["tag"]) for r in res.rows]
        assert keys == sorted(keys)
        assert len(keys) == 6
        assert sum(r["count(*)"] for r in res.rows) == n
        assert sum(r["sum(v)"] for r in res.rows) == n * (n - 1) // 2

    def test_bool_group_keys(self):
        t = Table({
            "flag": np.array([True, False] * 30),
            "v": np.ones(60, dtype=np.int64),
        })
        res = _reader(t).aggregate(["sum(v)"], group_by=["flag"])
        assert [r["flag"] for r in res.rows] == [False, True]
        assert all(r["sum(v)"] == 30 for r in res.rows)

    def test_group_by_aggregated_column(self):
        t = Table({"g": np.repeat(np.arange(4, dtype=np.int64), 10)})
        res = _reader(t).aggregate(
            ["count", "min(g)", "max(g)"], group_by=["g"]
        )
        for r in res.rows:
            assert r["min(g)"] == r["max(g)"] == r["g"]
            assert r["count(*)"] == 10

    def test_groups_absent_after_filter_vanish(self):
        t = Table({
            "g": np.repeat(np.arange(4, dtype=np.int64), 10),
            "v": np.arange(40, dtype=np.int64),
        })
        res = _reader(t).aggregate(
            ["count"], where=col("g") <= 1, group_by=["g"]
        )
        assert [r["g"] for r in res.rows] == [0, 1]


class TestResultHelpers:
    def test_scalar_and_column(self):
        t = Table({"v": np.arange(10, dtype=np.int64)})
        res = _reader(t).aggregate(["count", "sum(v)"])
        assert res.scalar("count") == 10
        assert res.scalar("sum(v)") == 45
        assert res.column("sum(v)") == [45]
        assert len(res) == 1

    def test_scalar_on_grouped_query_raises(self):
        t = Table({"g": np.zeros(5, dtype=np.int64)})
        res = _reader(t).aggregate(["count"], group_by=["g"])
        with pytest.raises(PlanError):
            res.scalar("count")


class TestCatalogEntryPoints:
    def test_query_time_travel(self):
        cat = CatalogTable.create(MemoryCatalogStore())
        s1 = cat.append(Table({"v": np.arange(10, dtype=np.int64)}))
        cat.append(Table({"v": np.arange(10, 20, dtype=np.int64)}))
        assert cat.query(["count"]).scalar("count") == 20
        old = cat.query(["count", "max(v)"], snapshot_id=s1.snapshot_id)
        assert old.rows[0] == {"count(*)": 10, "max(v)": 9}
        as_of = cat.query(["count"], as_of=s1.timestamp_ms)
        assert as_of.scalar("count") == 10

    def test_query_plan_object(self):
        cat = CatalogTable.create(MemoryCatalogStore())
        cat.append(Table({
            "g": np.repeat(np.arange(2, dtype=np.int64), 8),
            "v": np.arange(16, dtype=np.int64),
        }))
        plan = QueryPlan.build(
            ["count", "mean(v)"], where=col("v") >= 4, group_by=["g"]
        )
        res = cat.query(plan)
        assert [r["g"] for r in res.rows] == [0, 1]
        assert res.rows[0]["count(*)"] == 4
        assert res.rows[1]["count(*)"] == 8

    def test_pruned_to_nothing_keeps_sum_types(self):
        """sum() stays float 0.0 / int 0 by column kind even when the
        answer never touches a single extent (all files pruned)."""
        cat = CatalogTable.create(MemoryCatalogStore())
        cat.append(Table({
            "ts": np.arange(50, dtype=np.int64),
            "f": np.linspace(0, 1, 50),
        }))
        res = cat.query(
            ["count", "sum(f)", "sum(ts)"], where=col("ts") > 10**6
        )
        assert res.stats.files_pruned == 1
        row = res.rows[0]
        assert row["sum(f)"] == 0.0 and isinstance(row["sum(f)"], float)
        assert row["sum(ts)"] == 0 and isinstance(row["sum(ts)"], int)
        # same contract at the single-file level (zone maps prune all)
        dev = SimulatedStorage()
        BullionWriter(dev).write(Table({"f": np.linspace(0, 1, 30)}))
        r = BullionReader(dev).aggregate(
            ["sum(f)"], where=col("f") > 100.0
        )
        assert isinstance(r.rows[0]["sum(f)"], float)

    def test_stats_partition_files(self):
        cat = CatalogTable.create(MemoryCatalogStore())
        for k in range(3):
            cat.append(Table({
                "ts": np.arange(k * 50, (k + 1) * 50, dtype=np.int64)
            }))
        res = cat.query(["count"], where=col("ts") < 60)
        s = res.stats
        assert s.files_total == 3
        assert (
            s.files_pruned + s.files_meta_answered
            + s.files_footer_answered + s.files_decoded
            == 3
        )
        assert res.scalar("count") == 60
