"""Tests for the flat binary footer (FooterView), §2.3."""

import numpy as np
import pytest

from repro.core.footer import FooterError, FooterView, HEADER_TOTAL
from repro.core.reader import BullionReader
from repro.core.schema import Primitive
from repro.core.table import Table
from repro.core.writer import BullionWriter, WriterOptions
from repro.iosim import SimulatedStorage


@pytest.fixture
def written():
    rng = np.random.default_rng(0)
    table = Table(
        {
            "ints": rng.integers(0, 100, 500).astype(np.int64),
            "floats": rng.normal(size=500),
            "names": [f"n{i}".encode() for i in range(500)],
            "seq": [
                rng.integers(0, 10, 3).astype(np.int64) for _ in range(500)
            ],
        }
    )
    dev = SimulatedStorage()
    footer = BullionWriter(
        dev, options=WriterOptions(rows_per_page=100, rows_per_group=200)
    ).write(table)
    return dev, footer, table


class TestFooterView:
    def test_header_fields(self, written):
        _dev, footer, table = written
        assert footer.num_rows == 500
        assert footer.num_columns == 4
        assert footer.num_row_groups == 3  # 200+200+100
        assert footer.num_pages == 4 * (2 + 2 + 1)

    def test_find_column_all_names(self, written):
        _dev, footer, _t = written
        for expected_idx, name in enumerate(["ints", "floats", "names", "seq"]):
            assert footer.find_column(name) == expected_idx

    def test_find_missing_column_raises(self, written):
        _dev, footer, _t = written
        with pytest.raises(KeyError):
            footer.find_column("nope")

    def test_column_type_descriptors(self, written):
        _dev, footer, _t = written
        assert footer.column_type(0).primitive == Primitive.INT64
        assert footer.column_type(1).primitive == Primitive.FLOAT64
        assert footer.column_type(3).list_depth == 1

    def test_chunks_tile_the_data_region(self, written):
        dev, footer, _t = written
        total = 0
        for c in range(footer.num_columns):
            for g in range(footer.num_row_groups):
                total += footer.chunk(c, g).size
        # magic + chunks + footer + tail == file
        footer_len = dev.size - footer.file_offset - 8
        assert 4 + total + footer_len + 8 == dev.size

    def test_row_groups_partition_rows(self, written):
        _dev, footer, _t = written
        rows = sum(
            footer.row_group(g).n_rows for g in range(footer.num_row_groups)
        )
        assert rows == footer.num_rows

    def test_pages_per_group_sums_to_total(self, written):
        _dev, footer, _t = written
        assert sum(footer.pages_per_group()) == footer.num_pages

    def test_schema_parse_is_lazy_but_correct(self, written):
        _dev, footer, _t = written
        schema = footer.schema()
        assert schema.field_names() == ["ints", "floats", "names", "seq"]
        assert str(schema.fields[3].type) == "list<int64>"

    def test_physical_columns(self, written):
        _dev, footer, _t = written
        cols = footer.physical_columns()
        assert [c.name for c in cols] == ["ints", "floats", "names", "seq"]

    def test_deletion_vector_initially_empty(self, written):
        _dev, footer, _t = written
        assert footer.deleted_count() == 0
        assert not footer.deletion_bitmap().any()

    def test_checksums_present(self, written):
        _dev, footer, _t = written
        assert footer.page_hash(0) != 0
        assert footer.root_hash() != 0


class TestFooterErrors:
    def test_too_small(self):
        with pytest.raises(FooterError, match="too small"):
            FooterView(b"\x00" * 10)

    def test_bad_magic(self):
        with pytest.raises(FooterError, match="magic"):
            FooterView(b"XXXX" + b"\x00" * (HEADER_TOTAL - 4))

    def test_reader_rejects_bad_tail(self):
        dev = SimulatedStorage()
        dev.append(b"garbage garbage garbage")
        with pytest.raises(Exception):
            BullionReader(dev)


class TestLookupScaling:
    """The Fig 5 property: lookup probes grow ~log(n_cols), not linearly."""

    def _footer_with_columns(self, n):
        table = Table(
            {f"f{i}": np.zeros(4, dtype=np.int64) for i in range(n)}
        )
        dev = SimulatedStorage()
        return BullionWriter(
            dev, options=WriterOptions(rows_per_page=4, rows_per_group=4)
        ).write(table)

    def test_lookup_correct_at_scale(self):
        footer = self._footer_with_columns(2000)
        for probe in (0, 1, 999, 1999):
            assert footer.find_column(f"f{probe}") == probe
