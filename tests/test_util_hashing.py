"""Tests for repro.util.hashing: stable hashes for footer + Merkle."""

from repro.util.hashing import combine_hashes, hash64, hash_bytes


class TestHash64:
    def test_deterministic(self):
        assert hash64("clk_seq_cids") == hash64("clk_seq_cids")

    def test_known_fnv_vector(self):
        # FNV-1a 64-bit of empty input is the offset basis
        assert hash64(b"") == 0xCBF29CE484222325

    def test_distinct_names_distinct_hashes(self):
        names = [f"feature_{i}" for i in range(10000)]
        assert len({hash64(n) for n in names}) == len(names)

    def test_str_and_bytes_agree(self):
        assert hash64("abc") == hash64(b"abc")


class TestHashBytes:
    def test_deterministic_and_sensitive(self):
        assert hash_bytes(b"page") == hash_bytes(b"page")
        assert hash_bytes(b"page") != hash_bytes(b"pagf")

    def test_fits_in_u64(self):
        assert 0 <= hash_bytes(b"x" * 1000) < 2**64


class TestCombineHashes:
    def test_order_sensitive(self):
        a, b = hash_bytes(b"a"), hash_bytes(b"b")
        assert combine_hashes([a, b]) != combine_hashes([b, a])

    def test_empty_list_ok(self):
        assert isinstance(combine_hashes([]), int)
