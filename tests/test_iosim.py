"""Tests for the simulated storage device and its I/O accounting."""

import pytest

from repro.iosim import IOStats, SeekModel, SimulatedStorage


class TestReadWrite:
    def test_pwrite_pread_roundtrip(self):
        dev = SimulatedStorage()
        dev.pwrite(0, b"hello world")
        assert dev.pread(6, 5) == b"world"

    def test_append_returns_offset(self):
        dev = SimulatedStorage()
        assert dev.append(b"abc") == 0
        assert dev.append(b"def") == 3
        assert dev.size == 6

    def test_write_past_end_zero_fills(self):
        dev = SimulatedStorage()
        dev.pwrite(10, b"x")
        assert dev.pread(0, 10) == b"\x00" * 10

    def test_read_past_end_raises(self):
        dev = SimulatedStorage()
        dev.append(b"ab")
        with pytest.raises(ValueError, match="beyond"):
            dev.pread(0, 3)

    def test_truncate(self):
        dev = SimulatedStorage()
        dev.append(b"abcdef")
        dev.truncate(2)
        assert dev.size == 2
        dev.truncate(5)
        assert dev.pread(2, 3) == b"\x00" * 3


class TestAccounting:
    def test_byte_and_op_counters(self):
        dev = SimulatedStorage()
        dev.append(b"x" * 100)
        dev.pread(0, 40)
        dev.pread(40, 60)
        assert dev.stats.reads == 2
        assert dev.stats.bytes_read == 100
        assert dev.stats.writes == 1
        assert dev.stats.bytes_written == 100

    def test_sequential_reads_count_one_seek(self):
        dev = SimulatedStorage()
        dev.append(b"x" * 100)
        dev.pread(0, 50)
        dev.pread(50, 50)  # contiguous: no extra seek
        assert dev.stats.read_seeks == 1

    def test_random_reads_count_seeks(self):
        dev = SimulatedStorage()
        dev.append(b"x" * 100)
        dev.pread(80, 10)
        dev.pread(0, 10)
        dev.pread(50, 10)
        assert dev.stats.read_seeks == 3

    def test_reset(self):
        dev = SimulatedStorage()
        dev.append(b"abc")
        dev.stats.reset()
        assert dev.stats.bytes_written == 0 and dev.stats.writes == 0

    def test_modelled_time(self):
        stats = IOStats(reads=10, bytes_read=2_000_000, read_seeks=10)
        model = SeekModel(seek_latency_s=1e-3, bandwidth_bytes_per_s=1e9)
        # 10 seeks * 1ms + 2MB / 1GB/s = 10ms + 2ms
        assert abs(stats.modelled_time(model) - 0.012) < 1e-9

    def test_corrupt_is_uncounted(self):
        dev = SimulatedStorage()
        dev.append(b"abcd")
        writes = dev.stats.writes
        dev.corrupt(0, b"ZZ")
        assert dev.stats.writes == writes
        assert dev.raw_bytes()[:2] == b"ZZ"
