"""Tests for write-time storage quantization (§2.4 writer integration)."""

import numpy as np
import pytest

from repro.core import BullionReader, BullionWriter, Table, WriterOptions
from repro.core.schema import Primitive
from repro.iosim import SimulatedStorage
from repro.quantization import FloatFormat, QuantizationPolicy


@pytest.fixture
def embeddings():
    rng = np.random.default_rng(17)
    return {
        f"emb_{i}": np.tanh(rng.normal(size=500)).astype(np.float32)
        for i in range(4)
    }


def _write(columns, policy):
    dev = SimulatedStorage()
    BullionWriter(
        dev, options=WriterOptions(quantization=policy)
    ).write(Table(dict(columns)))
    return dev


class TestQuantizedWrites:
    def test_physical_types_recorded(self, embeddings):
        policy = QuantizationPolicy(
            assignments={
                "emb_0": FloatFormat.FP16,
                "emb_1": FloatFormat.BF16,
                "emb_2": FloatFormat.FP8_E4M3,
            },
            default=FloatFormat.FP32,
        )
        dev = _write(embeddings, policy)
        footer = BullionReader(dev).footer
        expect = {
            "emb_0": Primitive.FLOAT16,
            "emb_1": Primitive.BFLOAT16,
            "emb_2": Primitive.FLOAT8_E4M3,
            "emb_3": Primitive.FLOAT32,
        }
        for name, prim in expect.items():
            assert footer.column_type(footer.find_column(name)).primitive == prim

    def test_file_shrinks(self, embeddings):
        dev32 = _write(embeddings, QuantizationPolicy())
        dev16 = _write(
            embeddings, QuantizationPolicy(default=FloatFormat.FP16)
        )
        dev8 = _write(
            embeddings, QuantizationPolicy(default=FloatFormat.FP8_E4M3)
        )
        assert dev16.size < dev32.size * 0.65
        assert dev8.size < dev16.size * 0.8

    def test_widen_on_read(self, embeddings):
        policy = QuantizationPolicy(default=FloatFormat.FP16)
        dev = _write(embeddings, policy)
        out = BullionReader(dev).project(
            list(embeddings), widen_quantized=True
        )
        for name, original in embeddings.items():
            widened = out.column(name)
            assert widened.dtype == np.float32
            assert np.allclose(widened, original, atol=1e-3)

    def test_stored_representation_default(self, embeddings):
        policy = QuantizationPolicy(default=FloatFormat.BF16)
        dev = _write(embeddings, policy)
        out = BullionReader(dev).project(list(embeddings))
        assert out.column("emb_0").dtype == np.uint16  # raw bf16 payload

    def test_fp8_error_bounded(self, embeddings):
        policy = QuantizationPolicy(default=FloatFormat.FP8_E4M3)
        dev = _write(embeddings, policy)
        out = BullionReader(dev).project(["emb_0"], widen_quantized=True)
        err = np.abs(out.column("emb_0") - embeddings["emb_0"]).max()
        assert err < 0.07  # e4m3 spacing near 1.0

    def test_non_float_columns_untouched(self):
        rng = np.random.default_rng(1)
        table = {
            "ids": rng.integers(0, 100, 200).astype(np.int64),
            "emb": rng.normal(size=200).astype(np.float32),
        }
        dev = _write(table, QuantizationPolicy(default=FloatFormat.FP8_E4M3))
        out = BullionReader(dev).project(["ids"])
        assert np.array_equal(out.column("ids"), table["ids"])

    def test_mixed_policy_end_to_end(self, embeddings):
        policy = QuantizationPolicy(
            assignments={"emb_0": FloatFormat.FP32},
            default=FloatFormat.FP8_E4M3,
        )
        dev = _write(embeddings, policy)
        out = BullionReader(dev).project(
            list(embeddings), widen_quantized=True
        )
        # critical feature is bit-exact; others are within fp8 error
        assert np.array_equal(out.column("emb_0"), embeddings["emb_0"])
        assert not np.array_equal(out.column("emb_1"), embeddings["emb_1"])
        assert np.allclose(out.column("emb_1"), embeddings["emb_1"], atol=0.07)
