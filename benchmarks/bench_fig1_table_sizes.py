"""Fig 1 — top 10 ad tables in CN region (size in PB).

Paper: a bar chart with the largest table approaching 100 PB and a
long-tail decay across ranks A..J. Reproduction: the calibrated
power-law model plus a first-principles estimate showing the Table 1
schema at production row counts lands in the same regime.
"""

from reporting import report

from repro.workloads import estimate_table_size_pb, top10_table_sizes_pb


def test_bench_fig1_size_distribution(benchmark):
    sizes = benchmark(top10_table_sizes_pb)
    assert len(sizes) == 10
    assert sizes == sorted(sizes, reverse=True)
    assert 90 <= sizes[0] <= 100  # "can approach 100PB"
    lines = ["rank  size_pb  bar"]
    for rank, size in enumerate(sizes):
        bar = "#" * int(size / 2)
        lines.append(f"{chr(65 + rank)}     {size:7.1f}  {bar}")
    lines.append("")
    lines.append(
        "first-principles check: 4e10 rows x 17,733 features -> "
        f"{estimate_table_size_pb(rows=4e10):.0f} PB"
    )
    report("fig1_table_sizes", lines)
