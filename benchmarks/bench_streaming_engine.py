"""Streaming dataset engine: writer memory and parallel scan time.

Two claims the ISSUE-1 refactor makes measurable:

* the incremental writer (``open() -> write_batch() -> finish()``)
  keeps peak memory bounded by one row group while producing files
  byte-identical to the one-shot path — tracked both by ``tracemalloc``
  over the whole generate+write pipeline and by the writer's own
  instrumentation counters;
* the ``Scan`` read path overlaps chunk fetches across a thread pool,
  so on a latency-modelled device (seek latency + bandwidth slept out
  per operation) a parallel scan finishes in a fraction of the serial
  wall-clock.
"""

import time
import tracemalloc

import numpy as np
from reporting import report

from repro.core import BullionReader, BullionWriter, Table, WriterOptions
from repro.iosim import LatencyModelledStorage, SeekModel, SimulatedStorage

N_ROWS = 120_000
BATCH_ROWS = 4_096
ROWS_PER_GROUP = 8_192
ROWS_PER_PAGE = 1_024


def _batch(rng, n):
    return Table(
        {
            "id": rng.integers(0, 10**9, n).astype(np.int64),
            "score": rng.normal(size=n),
            "weight": rng.random(n).astype(np.float32),
        }
    )


def _options():
    return WriterOptions(
        rows_per_page=ROWS_PER_PAGE, rows_per_group=ROWS_PER_GROUP
    )


def _batches(rng):
    for start in range(0, N_ROWS, BATCH_ROWS):
        yield _batch(rng, min(BATCH_ROWS, N_ROWS - start))


def test_bench_streaming_vs_one_shot_writer_memory():
    from repro.core.table import concat_tables

    # one-shot: the whole table must exist before write() can start
    tracemalloc.start()
    rng = np.random.default_rng(0)
    table = concat_tables(list(_batches(rng)))
    one_dev = SimulatedStorage()
    BullionWriter(one_dev, options=_options()).write(table)
    _, one_shot_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del table

    # streaming: generate and write one batch at a time
    tracemalloc.start()
    rng = np.random.default_rng(0)
    stream_dev = SimulatedStorage()
    writer = BullionWriter(stream_dev, options=_options()).open()
    for batch in _batches(rng):
        writer.write_batch(batch)
    writer.finish()
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert stream_dev.raw_bytes() == one_dev.raw_bytes()
    stats = writer.stats
    assert stats.peak_buffered_rows <= ROWS_PER_GROUP + BATCH_ROWS
    assert streaming_peak < one_shot_peak
    lines = [
        f"rows: {N_ROWS:,} x 3 columns, "
        f"groups of {ROWS_PER_GROUP:,}, batches of {BATCH_ROWS:,}",
        f"one-shot pipeline peak:   {one_shot_peak:>12,} bytes",
        f"streaming pipeline peak:  {streaming_peak:>12,} bytes "
        f"({one_shot_peak / streaming_peak:.1f}x smaller)",
        f"writer peak buffered rows:      {stats.peak_buffered_rows:>8,} "
        f"(bound: group + one batch)",
        f"writer peak encoded pages held: {stats.peak_encoded_pages_held:>8,} "
        f"(of {stats.pages_written:,} written)",
        f"writer peak encoded bytes held: "
        f"{stats.peak_encoded_payload_bytes:>8,}",
        "output byte-identical to one-shot: True",
    ]
    report("streaming_writer_memory", lines)


def test_bench_parallel_vs_serial_scan():
    # a latency-modelled device that actually sleeps per operation:
    # 2 ms per seek, 500 MB/s sequential — chunk fetches dominated by
    # seek latency, which a thread pool can overlap
    rng = np.random.default_rng(1)
    n = 60_000
    # a wide-ish table scanned through a sparse projection, the §2.3
    # ML shape: the projected chunks are scattered, so every fetch
    # pays the seek latency a thread pool can overlap
    table = Table(
        {
            f"feat{i}": rng.normal(size=n).astype(np.float32)
            for i in range(12)
        }
    )
    base = SimulatedStorage()
    BullionWriter(
        base, options=WriterOptions(rows_per_page=512, rows_per_group=4_096)
    ).write(table)
    model = SeekModel(seek_latency_s=2e-3, bandwidth_bytes_per_s=5e8)
    columns = ["feat0", "feat4", "feat8", "feat11"]

    def timed_scan(max_workers):
        dev = LatencyModelledStorage(base, model, sleep=True)
        # fresh reader per run: no cross-run chunk-cache pollution
        reader = BullionReader(dev, chunk_cache_size=0)
        t0 = time.perf_counter()
        out = reader.scan(
            columns, max_workers=max_workers, prefetch_groups=4
        ).to_table()
        return time.perf_counter() - t0, out

    serial_s, serial_table = timed_scan(0)
    parallel_s, parallel_table = timed_scan(8)
    assert parallel_table.equals(serial_table)
    assert parallel_s < serial_s
    n_chunks = len(columns) * BullionReader(base).footer.num_row_groups
    lines = [
        f"rows: {n:,}, columns: {len(columns)}, "
        f"chunk fetches: {n_chunks} "
        f"(seek {model.seek_latency_s * 1e3:.0f} ms, "
        f"{model.bandwidth_bytes_per_s / 1e9:.1f} GB/s)",
        f"serial scan   (workers=0): {serial_s * 1e3:8.1f} ms",
        f"parallel scan (workers=8): {parallel_s * 1e3:8.1f} ms "
        f"({serial_s / parallel_s:.1f}x faster)",
        "tables equal: True",
    ]
    report("parallel_scan", lines)
