"""Fig 6 / §2.4 — storage quantization of floats and embeddings.

Paper: FP16/BF16/FP8 storage halves or quarters storage, I/O and
bandwidth; different formats trade precision per Fig 6's bit budgets.
Reproduction: quantize a normalized embedding table to every format,
reporting storage ratio and measured error, plus quantize/dequantize
throughput and the end-to-end file-size effect.
"""

import numpy as np
from reporting import report

from repro.core import BullionWriter, Table
from repro.iosim import SimulatedStorage
from repro.quantization import (
    BIT_LAYOUT,
    FloatFormat,
    QuantizationError,
    dequantize,
    quantize,
)
from repro.workloads import EmbeddingConfig, generate_embeddings

EMB = generate_embeddings(EmbeddingConfig(n_vectors=4000, dim=32, seed=2))
FLAT = EMB.reshape(-1)


def test_bench_quantize_fp16(benchmark):
    out = benchmark(quantize, FLAT, FloatFormat.FP16)
    assert out.dtype == np.float16


def test_bench_quantize_bf16(benchmark):
    out = benchmark(quantize, FLAT, FloatFormat.BF16)
    assert out.dtype == np.uint16


def test_bench_quantize_fp8_e4m3(benchmark):
    out = benchmark(quantize, FLAT, FloatFormat.FP8_E4M3)
    assert out.dtype == np.uint8


def test_bench_dequantize_fp8_e4m3(benchmark):
    codes = quantize(FLAT, FloatFormat.FP8_E4M3)
    out = benchmark(dequantize, codes, FloatFormat.FP8_E4M3)
    assert out.dtype == np.float32


def test_bench_fig6_error_storage_table(benchmark):
    formats = [
        FloatFormat.FP32,
        FloatFormat.TF32,
        FloatFormat.FP16,
        FloatFormat.BF16,
        FloatFormat.FP8_E5M2,
        FloatFormat.FP8_E4M3,
    ]
    errors = {f: QuantizationError.measure(FLAT, f) for f in formats}
    benchmark(QuantizationError.measure, FLAT, FloatFormat.FP16)

    lines = [
        "format     sign/exp/frac  bytes  rel_storage  mean_rel_err  max_abs_err"
    ]
    for fmt in formats:
        s, e, m = BIT_LAYOUT[fmt]
        err = errors[fmt]
        lines.append(
            f"{fmt.value:9s}  {s}/{e}/{m:>2}         "
            f"{int(err.storage_ratio * 4):4d}  {err.storage_ratio:11.2f}  "
            f"{err.mean_relative_error:12.2e}  {err.max_abs_error:11.2e}"
        )
    lines.append(
        "paper: 'reduction to 1 or 2 bytes per float can halve or quarter "
        "storage costs'"
    )
    report("fig6_quantization", lines)

    # shape: error grows as mantissa shrinks; storage is 1/2 and 1/4
    assert (
        errors[FloatFormat.FP16].mean_relative_error
        < errors[FloatFormat.BF16].mean_relative_error
        < errors[FloatFormat.FP8_E4M3].mean_relative_error
    )
    assert errors[FloatFormat.FP16].storage_ratio == 0.5
    assert errors[FloatFormat.FP8_E4M3].storage_ratio == 0.25


def test_bench_file_size_effect(benchmark):
    """End-to-end: FP16 embedding files are ~half the FP32 files."""
    cols32 = {f"d{i}": EMB[:, i].copy() for i in range(8)}
    cols16 = {k: quantize(v, FloatFormat.FP16) for k, v in cols32.items()}

    def write(cols):
        dev = SimulatedStorage()
        BullionWriter(dev).write(Table(dict(cols)))
        return dev.size

    size16 = benchmark(write, cols16)
    size32 = write(cols32)
    assert size16 < size32 * 0.6
