"""Aggregation fast path: metadata answers vs full decode.

The query engine's headline claim: ``count``/``min``/``max`` over a
clean snapshot are *metadata* problems — the manifest (or at worst
the footers) answers them with zero data-chunk fetches, so their cost
is independent of table size. This bench builds a multi-file catalog
on a latency-modelled backend (every opened file charges seek latency
+ bandwidth per operation, accumulated — not slept) and compares
three ways of answering the same queries:

* fast path   — ``snap.query(...)`` with metadata on (the default);
* full decode — the same query with ``use_metadata=False``;
* hybrid      — a predicate cutting mid-row-group, where ALWAYS/NEVER
  extents answer from metadata and only the boundary group decodes.

Acceptance bar asserted here: the metadata-answered queries fetch
zero data chunks and are >=10x cheaper in modelled device time than
full decode; the hybrid count decodes only boundary extents.
"""

import numpy as np
from reporting import report

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core import Table, WriterOptions
from repro.expr import col
from repro.iosim import LatencyModelledStorage, SeekModel

N_FILES = 8
ROWS_PER_FILE = 16_384
ROWS_PER_GROUP = 2_048
ROWS_PER_PAGE = 512
MODEL = SeekModel(seek_latency_s=1e-3, bandwidth_bytes_per_s=5e8)


class LatencyModelledCatalogStore(MemoryCatalogStore):
    """Memory store whose data files charge modelled device time."""

    def __init__(self) -> None:
        super().__init__("latency-query")
        self.opened: list[LatencyModelledStorage] = []

    def open_data(self, file_id: str):
        wrapper = LatencyModelledStorage(
            super().open_data(file_id), MODEL, sleep=False
        )
        self.opened.append(wrapper)
        return wrapper

    def begin_run(self) -> None:
        self.opened = []

    def elapsed_s(self) -> float:
        return sum(w.elapsed_s for w in self.opened)


def _build_table(store) -> CatalogTable:
    cat = CatalogTable.create(store)
    rng = np.random.default_rng(0)
    for k in range(N_FILES):
        lo = k * ROWS_PER_FILE
        cat.append(
            Table({
                "ts": np.arange(lo, lo + ROWS_PER_FILE, dtype=np.int64),
                "score": rng.random(ROWS_PER_FILE),
                "value": rng.normal(size=ROWS_PER_FILE).astype(np.float32),
                "region": rng.integers(0, 16, ROWS_PER_FILE).astype(
                    np.int32
                ),
                "payload": [b"x" * 64] * ROWS_PER_FILE,
            }),
            options=WriterOptions(
                rows_per_page=ROWS_PER_PAGE, rows_per_group=ROWS_PER_GROUP
            ),
        )
    return cat


def test_bench_metadata_vs_decode():
    store = LatencyModelledCatalogStore()
    cat = _build_table(store)
    total_rows = N_FILES * ROWS_PER_FILE

    def run(aggs, where=None, use_metadata=True):
        store.begin_run()
        with cat.pin() as snap:
            res = snap.query(aggs, where=where, use_metadata=use_metadata)
        return res, store.elapsed_s()

    lines = [
        f"table: {N_FILES} files x {ROWS_PER_FILE:,} rows "
        f"(seek {MODEL.seek_latency_s * 1e3:.0f} ms, "
        f"{MODEL.bandwidth_bytes_per_s / 1e9:.1f} GB/s modelled)",
        "",
        f"{'query':36} {'path':14} {'chunks':>7} {'time':>10} {'speedup':>8}",
    ]

    cases = [
        ("count, min(ts), max(ts), min(score)", None),
        ("count", col("ts") < 4 * ROWS_PER_FILE),
    ]
    speedups = []
    for aggs_text, where in cases:
        aggs = [a.strip() for a in aggs_text.split(",")]
        fast, fast_s = run(aggs, where=where)
        slow, slow_s = run(aggs, where=where, use_metadata=False)
        assert fast.rows == slow.rows
        assert fast.stats.data_chunks_fetched == 0, (
            "metadata-answerable query fetched data chunks"
        )
        speedup = slow_s / fast_s if fast_s else float("inf")
        speedups.append(speedup)
        label = aggs_text if where is None else f"{aggs_text} [filtered]"
        shown = "zero-I/O" if fast_s == 0 else f"{speedup:.1f}x"
        lines.append(
            f"{label[:36]:36} {'metadata':14} "
            f"{fast.stats.data_chunks_fetched:>7} {fast_s * 1e3:>8.2f} ms "
            f"{shown:>8}"
        )
        lines.append(
            f"{'':36} {'full decode':14} "
            f"{slow.stats.data_chunks_fetched:>7} {slow_s * 1e3:>8.2f} ms "
            f"{'1.0x':>8}"
        )

    # the first (unfiltered count/min/max) case never opens a file at
    # all — the manifest answered — so its modelled time is zero
    fast, fast_s = run(["count", "min(ts)", "max(score)"])
    assert fast.stats.files_meta_answered == N_FILES
    assert fast_s == 0.0

    # hybrid: a boundary-straddling predicate decodes only the one
    # MAYBE row group; everything provable stays metadata
    edge = col("ts") < 3 * ROWS_PER_FILE + ROWS_PER_GROUP // 2
    hybrid, hybrid_s = run(["count"], where=edge)
    _slow_h, slow_h_s = run(["count"], where=edge, use_metadata=False)
    assert hybrid.rows[0]["count(*)"] == (
        3 * ROWS_PER_FILE + ROWS_PER_GROUP // 2
    )
    assert hybrid.stats.scan.chunks_fetched == 1
    lines += [
        "",
        f"boundary-straddling count: {hybrid_s * 1e3:.2f} ms vs "
        f"{slow_h_s * 1e3:.2f} ms decode "
        f"({slow_h_s / hybrid_s:.1f}x), "
        f"{hybrid.stats.files_pruned} files pruned, "
        f"{hybrid.stats.files_meta_answered} manifest-answered, "
        f"{hybrid.stats.scan.chunks_fetched} chunk fetched "
        f"(of {total_rows // ROWS_PER_GROUP * 4})",
        f"metadata-path speedups: "
        + ", ".join(
            "zero-I/O" if s == float("inf") else f"{s:.0f}x"
            for s in speedups
        ),
    ]

    for s in speedups:
        assert s >= 10.0, f"metadata path only {s:.1f}x over decode"
    report("query_aggregate", lines)


def test_bench_grouped_aggregation_throughput():
    """Decode-path throughput: streaming hash group-by over all rows."""
    import time

    store = LatencyModelledCatalogStore()
    cat = _build_table(store)
    total_rows = N_FILES * ROWS_PER_FILE
    with cat.pin() as snap:
        t0 = time.perf_counter()
        grouped = snap.query(
            ["count", "sum(score)", "mean(value)", "min(value)"],
            where=col("score") > 0.1,
            group_by=["region"],
            max_workers=8,
        )
        wall = time.perf_counter() - t0
    assert len(grouped.rows) == 16
    matched = sum(r["count(*)"] for r in grouped.rows)
    assert 0 < matched < total_rows
    report(
        "query_aggregate_throughput",
        [
            f"filtered group-by(region=16) sum/mean/min over "
            f"{total_rows:,} rows, {matched:,} matched (decode path, "
            f"8 workers): {wall * 1e3:.1f} ms wall "
            f"({total_rows / wall / 1e6:.1f} M rows/s)",
        ],
    )
