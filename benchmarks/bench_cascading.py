"""§2.6 — cascading encoding selection and the recursion-depth ablation.

Paper: composable encodings "achieve superior data compression compared
to static, single-encoding approaches", selection needs sampling +
heuristics, and "current implementations, such as BtrBlocks,
pragmatically limit recursion to one or two levels". Reproduction:
cascade-selected vs best-static-single vs trivial across representative
ML columns, plus the depth 0/1/2 ablation DESIGN.md calls out.
"""

import numpy as np
from reporting import report

from repro.cascading import COLD_STORAGE, select_encoding
from repro.cascading.objective import raw_size_bytes
from repro.encodings import encode_blob

RNG = np.random.default_rng(21)


def _columns():
    n = 12000
    window = list(RNG.integers(0, 10**6, 128))
    windows = []
    for _ in range(150):
        window = ([int(RNG.integers(0, 10**6))] + window)[:128]
        windows.append(np.array(window, dtype=np.int64))
    return {
        "categorical_runs": np.resize(
            np.repeat(RNG.integers(0, 12, 300), RNG.integers(5, 80, 300)), n
        ).astype(np.int64),
        "sorted_ids": np.sort(RNG.integers(0, 10**9, n)).astype(np.int64),
        "small_ints": RNG.integers(0, 50, n).astype(np.int64),
        "prices": np.round(RNG.uniform(0, 999, n // 2), 2),
        "gaussian": RNG.normal(size=n // 2),
        "urls": [f"https://a.b/item/{i % 500}".encode() for i in range(4000)],
        "rare_flags": RNG.random(n) < 0.01,
        "clk_seq_cids": windows,
    }


def test_bench_selector_on_int_column(benchmark):
    data = _columns()["categorical_runs"]
    result = benchmark(select_encoding, data)
    assert result.best.encoded_bytes > 0


def test_bench_cascade_vs_static(benchmark):
    columns = _columns()
    lines = ["column            raw_B      cascade_B  winner                    static_best_B  gain"]
    total_cascade, total_static, total_raw = 0, 0, 0
    for name, data in columns.items():
        result = select_encoding(data, weights=COLD_STORAGE)
        blob = encode_blob(data, result.encoding)
        # best *non-composed* scheme = depth-0 selection
        static = select_encoding(data, weights=COLD_STORAGE, max_depth=0)
        static_blob = encode_blob(data, static.encoding)
        raw = raw_size_bytes(data)
        total_cascade += len(blob)
        total_static += len(static_blob)
        total_raw += raw
        lines.append(
            f"{name:16s}  {raw:>9,}  {len(blob):>9,}  "
            f"{result.description:24s}  {len(static_blob):>13,}  "
            f"{len(static_blob) / len(blob):4.1f}x"
        )
    benchmark(select_encoding, columns["small_ints"], weights=COLD_STORAGE)
    lines.append(
        f"{'TOTAL':16s}  {total_raw:>9,}  {total_cascade:>9,}  "
        f"{'':24s}  {total_static:>13,}  "
        f"{total_static / total_cascade:4.1f}x"
    )
    lines.append(
        "paper: composable encodings 'achieve superior data compression "
        "compared to static, single-encoding approaches'"
    )
    report("cascading_vs_static", lines)
    assert total_cascade <= total_static  # cascade never loses overall


def test_bench_recursion_depth_ablation(benchmark):
    columns = _columns()
    lines = ["depth  total_encoded_B   note"]
    totals = {}
    for depth in (0, 1, 2):
        total = 0
        for data in columns.values():
            result = select_encoding(
                data, weights=COLD_STORAGE, max_depth=depth
            )
            total += len(encode_blob(data, result.encoding))
        totals[depth] = total
    benchmark(
        select_encoding,
        columns["categorical_runs"],
        weights=COLD_STORAGE,
        max_depth=2,
    )
    notes = {
        0: "single encodings only",
        1: "one composition level",
        2: "two levels (BtrBlocks' pragmatic bound)",
    }
    for depth, total in totals.items():
        lines.append(f"{depth}      {total:>14,}   {notes[depth]}")
    gain_01 = totals[0] / totals[1]
    gain_12 = totals[1] / totals[2]
    lines.append(
        f"depth 0->1 gain {gain_01:4.2f}x; depth 1->2 gain {gain_12:4.2f}x "
        "(diminishing returns -> the paper's 1-2 level pragmatism)"
    )
    report("cascading_depth_ablation", lines)
    assert totals[1] <= totals[0]
    assert totals[2] <= totals[1] * 1.01  # depth 2 never meaningfully worse
    assert gain_01 > gain_12 * 0.9  # first level buys (at least) the most
