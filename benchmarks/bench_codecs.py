"""Codec kernel throughput scoreboard (CI smoke bench).

Companion to ``bench_table2_encodings.py``: that bench reproduces the
paper's compression-ratio table, this one tracks the *speed* of the
vectorized encode/decode kernels so a regression in a hot loop shows up
in CI rather than in a production scan. Two artifacts are published:

* ``benchmarks/results/codecs.txt`` — the human-readable scoreboard;
* ``BENCH_codecs.json`` (repo root) — the machine-readable trajectory
  file (schema ``bench_codecs/v1``) for tooling to diff across commits.

CI runs at ``CI_SCALE`` so the whole board stays a few seconds; local
runs can pass a bigger scale through ``repro.tools.codec_bench.main``.
"""

import json
import os

from reporting import registry_snapshot_dict, report

from repro.tools.codec_bench import (
    format_scoreboard,
    run_scoreboard,
    scoreboard_json,
)

CI_SCALE = float(os.environ.get("CODEC_BENCH_SCALE", "0.25"))
CI_REPEATS = int(os.environ.get("CODEC_BENCH_REPEATS", "2"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_codecs.json")


def test_codec_scoreboard():
    results = run_scoreboard(scale=CI_SCALE, repeats=CI_REPEATS)
    assert results, "scoreboard produced no rows"
    # sanity floor: every cell must actually move data
    for row in results:
        assert row.encode_mb_s > 0 and row.decode_mb_s > 0, row
        assert row.encoded_bytes > 0, row
    report("codecs", format_scoreboard(results))
    # richer schema than the generic bench_report/v1 file report() just
    # wrote at the same path — but with the same embedded "metrics" key,
    # so `repro-inspect metrics BENCH_codecs.json` works on both
    payload = json.loads(scoreboard_json(results))
    payload["metrics"] = registry_snapshot_dict()
    with open(JSON_PATH, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    assert payload["schema"] == "bench_codecs/v1"
    assert len(payload["rows"]) == len(results)
