"""Fig 3/4 — delta encoding for long-sequence sparse features.

Paper: ``clk_seq_cids`` (256-element ``list<int64>`` vectors sorted by
uid/time) exhibits sliding-window overlap; Bullion's delta format
(<delta bit> <delta range> <head> <tail>, bulk zstd'd) yields
"substantial storage savings" over the plain list encoding.
Reproduction: measure encoded sizes of plain / plain+zlib / sparse
delta on the Fig 3 workload, plus encode/decode throughput.
"""

import numpy as np
from reporting import report

from repro.encodings import (
    Chunked,
    ListEncoding,
    SparseListDelta,
    decode_blob,
    encode_blob,
)
from repro.workloads import SlidingWindowConfig, generate_click_sequences, overlap_profile

CONFIG = SlidingWindowConfig(
    n_users=40, events_per_user=25, window_size=256, seed=5
)


def _rows():
    rows, _uids = generate_click_sequences(CONFIG)
    return rows


def test_bench_sparse_delta_encode(benchmark):
    rows = _rows()
    blob = benchmark(encode_blob, rows, SparseListDelta())

    plain = encode_blob(rows, ListEncoding())
    plain_zlib = encode_blob(rows, ListEncoding(values_child=Chunked()))
    raw = sum(r.nbytes for r in rows)
    profile = overlap_profile(rows)
    lines = [
        f"workload: {len(rows)} rows x {CONFIG.window_size} int64 "
        f"(mean overlap {profile['mean_overlap_fraction']:.2f}, "
        f"identical {profile['identical_fraction']:.2f})",
        f"raw:                   {raw:>10,} B  1.00x",
        f"list (plain):          {len(plain):>10,} B  {raw/len(plain):5.1f}x",
        f"list + zlib bulk:      {len(plain_zlib):>10,} B  "
        f"{raw/len(plain_zlib):5.1f}x",
        f"sparse delta (Fig 4):  {len(blob):>10,} B  {raw/len(blob):5.1f}x",
        "paper: 'substantial storage savings with its optimized encoding "
        "scheme for sparse features'",
    ]
    # the paper's shape: sparse delta must beat both plain and zlib
    assert len(blob) < len(plain) / 5
    assert len(blob) < len(plain_zlib)
    report("fig4_sparse_delta", lines)


def test_bench_sparse_delta_decode(benchmark):
    rows = _rows()
    blob = encode_blob(rows, SparseListDelta())
    out = benchmark(decode_blob, blob)
    assert len(out) == len(rows)
    assert np.array_equal(out[-1], rows[-1])


def test_bench_plain_list_baseline(benchmark):
    rows = _rows()
    blob = benchmark(encode_blob, rows, ListEncoding(values_child=Chunked()))
    assert len(blob) > 0
