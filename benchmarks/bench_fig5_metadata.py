"""Fig 5 — metadata parsing overhead in feature projection.

Paper: extracting one column's metadata from a file with N feature
columns costs Parquet time linear in N (52 ms at 10k columns, C++),
while Bullion stays flat under 2 ms (1.2 ms at 10k). Reproduction: the
same experiment over the thrift-like baseline footer vs the flat
Bullion footer; absolute numbers differ (Python vs C++) but the shape —
linear vs flat, orders of magnitude apart at 10k+ columns — is the
claim under test.
"""

import struct
import time

import numpy as np
import pytest
from reporting import report

from repro.baseline import ParquetLikeWriter, parse_metadata
from repro.core.footer import FooterView
from repro.core.table import Table
from repro.core.writer import BullionWriter, WriterOptions
from repro.iosim import SimulatedStorage

FEATURE_COUNTS = [1000, 5000, 10000, 20000]
ROWS = 8


def _make_table(n_cols):
    rng = np.random.default_rng(n_cols)
    return Table(
        {
            f"f_{i}": rng.integers(0, 100, ROWS).astype(np.int64)
            for i in range(n_cols)
        }
    )


def _parquet_footer(n_cols) -> bytes:
    dev = SimulatedStorage()
    meta = ParquetLikeWriter(dev).write(_make_table(n_cols))
    tail = dev.pread(dev.size - 8, 8)
    (footer_len,) = struct.unpack_from("<I", tail, 0)
    return dev.pread(dev.size - 8 - footer_len, footer_len)


def _bullion_footer(n_cols) -> bytes:
    dev = SimulatedStorage()
    BullionWriter(
        dev, options=WriterOptions(rows_per_page=ROWS, rows_per_group=ROWS)
    ).write(_make_table(n_cols))
    tail = dev.pread(dev.size - 8, 8)
    (footer_len,) = struct.unpack_from("<I", tail, 0)
    return dev.pread(dev.size - 8 - footer_len, footer_len)


def _parquet_extract(footer_bytes, name):
    meta = parse_metadata(footer_bytes)  # the full deserialization
    for col in meta.row_groups[0].columns:
        if col.path_in_schema == name:
            return col.data_page_offset
    raise KeyError(name)


def _bullion_extract(footer_bytes, name):
    view = FooterView(footer_bytes)  # header probe only
    idx = view.find_column(name)  # binary map scan
    return view.chunk(idx, 0).offset  # offsets array probe


def _best_of(fn, *args, reps=3):
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_parquet_parse_10k(benchmark):
    footer = _parquet_footer(10000)
    offset = benchmark.pedantic(
        _parquet_extract, args=(footer, "f_5000"), rounds=3, iterations=1
    )
    assert offset > 0


def test_bench_bullion_lookup_10k(benchmark):
    footer = _bullion_footer(10000)
    offset = benchmark(_bullion_extract, footer, "f_5000")
    assert offset > 0


@pytest.mark.parametrize("n_cols", [1000, 20000])
def test_bench_bullion_lookup_is_flat(benchmark, n_cols):
    footer = _bullion_footer(n_cols)
    benchmark(_bullion_extract, footer, f"f_{n_cols // 2}")


def test_bench_fig5_full_sweep(benchmark):
    """Regenerate the whole figure and check its shape."""
    results = []
    for n in FEATURE_COUNTS:
        pq = _best_of(_parquet_extract, _parquet_footer(n), f"f_{n // 2}")
        bu = _best_of(_bullion_extract, _bullion_footer(n), f"f_{n // 2}")
        results.append((n, pq * 1e3, bu * 1e3))

    # the benchmarked op: the 10k-column Bullion lookup
    footer = _bullion_footer(10000)
    benchmark(_bullion_extract, footer, "f_5000")

    paper = {1000: (5.0, 0.9), 5000: (26.0, 1.0), 10000: (52.0, 1.2),
             20000: (104.0, 1.6)}  # ms, eyeballed from Fig 5 + text
    lines = ["#features  parquet_ms  bullion_ms  ratio   paper_parquet_ms  paper_bullion_ms"]
    for n, pq, bu in results:
        pp, pb = paper[n]
        lines.append(
            f"{n:9d}  {pq:10.2f}  {bu:10.4f}  {pq/bu:6.0f}x  "
            f"{pp:16.1f}  {pb:16.1f}"
        )
    lines.append("shape check: parquet linear in #features, bullion flat <2ms")
    report("fig5_metadata", lines)

    # parquet cost grows ~linearly (>=8x from 1k to 20k)
    assert results[-1][1] / results[0][1] > 8
    # bullion stays flat: under 2 ms everywhere and under 10x spread
    assert all(bu < 2.0 for _n, _pq, bu in results)
    # and the gap at 10k columns is orders of magnitude
    n10k = results[2]
    assert n10k[1] / n10k[2] > 100
