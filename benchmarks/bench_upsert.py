"""Keyed upsert vs delete+append, and the price of an evolved scan.

Two claims the ISSUE-7 ingestion path makes measurable on the
latency-modelled backend:

* ``upsert(batch, key=…)`` finds its victim files through manifest
  key-range pruning — a batch whose keys cluster in one of N files
  opens that file only, and lands as **one** atomic snapshot where
  delete + append takes two (with a window where the deleted rows are
  gone but their replacements not yet visible);
* reading a heterogeneous snapshot through the per-file resolver
  (rename + widen + fill) costs a bounded constant factor over the
  identical homogeneous scan, and metadata-only aggregation stays at
  zero file opens on both.
"""

import time

import numpy as np
from reporting import report

from repro.catalog import (
    AddColumn,
    CatalogTable,
    MemoryCatalogStore,
    RenameColumn,
    WidenColumn,
)
from repro.core import Table, WriterOptions
from repro.expr import col
from repro.iosim import LatencyModelledStorage, SeekModel

N_FILES = 8
ROWS_PER_FILE = 8_192
OPTS = WriterOptions(rows_per_page=512, rows_per_group=2_048)
MODEL = SeekModel(seek_latency_s=1e-3, bandwidth_bytes_per_s=5e8)


class LatencyModelledCatalogStore(MemoryCatalogStore):
    """Memory store whose data files charge modelled device time."""

    def __init__(self) -> None:
        super().__init__("latency-catalog")
        self.opened: list[LatencyModelledStorage] = []

    def open_data(self, file_id: str):
        wrapper = LatencyModelledStorage(
            super().open_data(file_id), MODEL, sleep=False
        )
        self.opened.append(wrapper)
        return wrapper

    def begin_run(self) -> None:
        self.opened = []

    def elapsed_s(self) -> float:
        return sum(w.elapsed_s for w in self.opened)


def _build(store) -> CatalogTable:
    cat = CatalogTable.create(store)
    rng = np.random.default_rng(0)
    for k in range(N_FILES):
        lo = k * ROWS_PER_FILE
        cat.append(
            Table({
                "id": np.arange(lo, lo + ROWS_PER_FILE, dtype=np.int64),
                "score": rng.random(ROWS_PER_FILE),
                "n": np.arange(ROWS_PER_FILE, dtype=np.int32),
                "payload": [b"x" * 64] * ROWS_PER_FILE,
            }),
            options=OPTS,
        )
    return cat


def _batch(keys: np.ndarray) -> Table:
    rng = np.random.default_rng(1)
    return Table({
        "id": keys,
        "score": rng.random(len(keys)),
        "n": np.arange(len(keys), dtype=np.int32),
        "payload": [b"fresh" * 8] * len(keys),
    })


def test_bench_upsert_vs_delete_append():
    keys = np.arange(100, 1100, dtype=np.int64)  # clustered in file 0

    # -- one atomic upsert ------------------------------------------
    store_a = LatencyModelledCatalogStore()
    cat_a = _build(store_a)
    base_snap = cat_a.current_snapshot().snapshot_id
    store_a.begin_run()
    t0 = time.perf_counter()
    cat_a.upsert(_batch(keys), key="id")
    upsert_wall = time.perf_counter() - t0
    upsert_io = store_a.elapsed_s()
    upsert_opens = len(store_a.opened)
    upsert_commits = cat_a.current_snapshot().snapshot_id - base_snap
    summary = cat_a.current_snapshot().summary

    # -- delete then append (two transactions) ---------------------
    store_b = LatencyModelledCatalogStore()
    cat_b = _build(store_b)
    base_snap = cat_b.current_snapshot().snapshot_id
    store_b.begin_run()
    t0 = time.perf_counter()
    cat_b.delete(col("id").isin(keys.tolist()))
    cat_b.append(_batch(keys), options=OPTS)
    da_wall = time.perf_counter() - t0
    da_io = store_b.elapsed_s()
    da_opens = len(store_b.opened)
    da_commits = cat_b.current_snapshot().snapshot_id - base_snap

    # both end at the same live state
    assert (
        cat_a.current_snapshot().live_rows
        == cat_b.current_snapshot().live_rows
        == N_FILES * ROWS_PER_FILE
    )
    assert upsert_commits == 1 and da_commits == 2
    # key-range pruning: only the victim file (plus the replacement
    # write) is touched, not all N
    assert upsert_opens < N_FILES

    report("upsert_vs_delete_append", [
        f"table: {N_FILES} files x {ROWS_PER_FILE:,} rows, keyed by 'id'; "
        f"batch: {len(keys):,} keys clustered in one file",
        f"upsert:        {upsert_commits} commit, {upsert_opens} file opens, "
        f"modelled I/O {upsert_io * 1e3:7.1f} ms, "
        f"wall {upsert_wall * 1e3:7.1f} ms "
        f"(rows_replaced={summary.get('rows_replaced')})",
        f"delete+append: {da_commits} commits, {da_opens} file opens, "
        f"modelled I/O {da_io * 1e3:7.1f} ms, "
        f"wall {da_wall * 1e3:7.1f} ms",
        "upsert is atomic: no snapshot exists with the old rows deleted "
        "but the replacements missing",
    ])


def test_bench_evolved_scan_overhead():
    # homogeneous: every file already at the (never-evolved) layout
    plain_store = LatencyModelledCatalogStore()
    plain = _build(plain_store)

    # evolved: same files, then rename + widen + add — all files now
    # read through the per-file resolver
    evolved_store = LatencyModelledCatalogStore()
    evolved = _build(evolved_store)
    evolved.evolve(
        RenameColumn("score", "quality"),
        WidenColumn("n", "int64"),
        AddColumn("clicks", "int64"),
    )

    cols_plain = ["id", "score", "n"]
    cols_evolved = ["id", "quality", "n", "clicks"]

    def timed_scan(cat, columns):
        best = None
        rows = 0
        for _ in range(3):
            t0 = time.perf_counter()
            with cat.pin() as snap:
                rows = sum(b.num_rows for b in snap.scan(columns))
            dt = time.perf_counter() - t0
            best = dt if best is None else min(best, dt)
        return best, rows

    plain_t, plain_rows = timed_scan(plain, cols_plain)
    evolved_t, evolved_rows = timed_scan(evolved, cols_evolved)
    assert plain_rows == evolved_rows == N_FILES * ROWS_PER_FILE

    # metadata fast path must stay zero-open on both
    plain_store.begin_run()
    evolved_store.begin_run()
    with plain.pin() as snap:
        res_p = snap.query(["count", "min(id)", "max(score)"])
    with evolved.pin() as snap:
        res_e = snap.query(["count", "min(id)", "max(quality)"])
    assert plain_store.opened == [] and evolved_store.opened == []
    assert (
        res_p.rows[0]["max(score)"] == res_e.rows[0]["max(quality)"]
    )

    ratio = evolved_t / plain_t
    report("evolved_scan_overhead", [
        f"table: {N_FILES} files x {ROWS_PER_FILE:,} rows",
        f"homogeneous scan: {plain_t * 1e3:7.1f} ms "
        f"({len(cols_plain)} columns)",
        f"evolved scan:     {evolved_t * 1e3:7.1f} ms "
        f"({len(cols_evolved)} columns via rename+widen+fill resolver)",
        f"overhead: {ratio:.2f}x",
        "metadata aggregation: zero file opens on both "
        "(renamed column included)",
    ])
