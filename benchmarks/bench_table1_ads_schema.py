"""Table 1 — statistical breakdown of column types in an Ad Parquet file.

Paper: the census of ByteDance's ads table (16,256 ``list<int64>``
columns, 17,733 total). Reproduction: the workload generator must emit
a schema with *exactly* that census, and schema construction/flattening
must be cheap enough to do per-file.
"""

from reporting import report

from repro.workloads import (
    TABLE1_BREAKDOWN,
    TABLE1_TOTAL_COLUMNS,
    build_ads_schema,
    census_of,
)


def test_bench_build_full_ads_schema(benchmark):
    schema = benchmark(build_ads_schema)
    census = census_of(schema)
    assert census == TABLE1_BREAKDOWN
    assert len(schema.fields) == TABLE1_TOTAL_COLUMNS
    width = max(len(t) for t in census)
    lines = [f"{'column type':{width}s}  paper  generated"]
    for type_str, count in TABLE1_BREAKDOWN.items():
        lines.append(f"{type_str:{width}s}  {count:5d}  {census[type_str]:9d}")
    lines.append(f"{'TOTAL':{width}s}  {TABLE1_TOTAL_COLUMNS:5d}  "
                 f"{sum(census.values()):9d}")
    report("table1_ads_schema", lines)


def test_bench_flatten_physical_columns(benchmark):
    schema = build_ads_schema()
    cols = benchmark(schema.physical_columns)
    # structs flatten into one stream per field, so physical >= logical
    assert len(cols) >= TABLE1_TOTAL_COLUMNS
