"""Fig 2 — Merkle tree update for checksum maintenance.

Paper: an in-place page update propagates one leaf hash through its
row-group node to the root (the red arrows), instead of the monolithic
whole-file rehash legacy formats need. Reproduction: measure both and
report bytes-hashed and wall-time ratios.
"""

import numpy as np
from reporting import report

from repro.core.checksum import MerkleTree, full_file_checksum

N_PAGES = 256
PAGES_PER_GROUP = 16
PAGE_SIZE = 64 * 1024


def _pages():
    rng = np.random.default_rng(0)
    return [
        rng.integers(0, 256, PAGE_SIZE, dtype=np.uint8).tobytes()
        for _ in range(N_PAGES)
    ]


def test_bench_incremental_update(benchmark):
    pages = _pages()
    tree = MerkleTree.build(pages, [PAGES_PER_GROUP] * (N_PAGES // PAGES_PER_GROUP))
    new_payload = b"\x5a" * PAGE_SIZE

    update = benchmark(tree.update_page, 37, new_payload)
    assert update.nodes_recomputed == 3
    assert tree.verify_structure()

    _checksum, full_bytes = full_file_checksum(pages)
    incr_bytes = update.payload_bytes_hashed + 8 * update.hash_entries_read
    lines = [
        f"file: {N_PAGES} pages x {PAGE_SIZE // 1024} KiB "
        f"({N_PAGES * PAGE_SIZE // (1 << 20)} MiB)",
        f"monolithic rehash:   {full_bytes:>12,} bytes hashed",
        f"incremental update:  {incr_bytes:>12,} bytes hashed "
        f"(1 leaf + {update.hash_entries_read} hash entries)",
        f"reduction factor:    {full_bytes / incr_bytes:8.1f}x",
        "paper: 'only file segments affected by the change are read'",
    ]
    assert full_bytes / incr_bytes > 50
    report("fig2_merkle", lines)


def test_bench_full_rehash_baseline(benchmark):
    pages = _pages()
    checksum, total = benchmark(full_file_checksum, pages)
    assert total == N_PAGES * PAGE_SIZE


def test_bench_tree_build(benchmark):
    pages = _pages()
    tree = benchmark(
        MerkleTree.build, pages, [PAGES_PER_GROUP] * (N_PAGES // PAGES_PER_GROUP)
    )
    assert len(tree.group_hashes) == N_PAGES // PAGES_PER_GROUP
