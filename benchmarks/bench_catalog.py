"""Catalog control plane: commit throughput and maintenance reclaim.

Two claims the ISSUE-3 subsystem makes measurable:

* optimistic-concurrency commits make progress under contention —
  N threads hammering the same table all land their snapshots (no
  lost updates), with conflict-replays counted rather than failing;
* the maintenance service turns many small deletion-scrubbed ingest
  files into few training-sized files and *reports the bytes it
  reclaims*, with scans before/after returning identical live rows.
"""

import threading
import time

import numpy as np
from reporting import report

from repro.catalog import (
    CatalogTable,
    MaintenancePolicy,
    MaintenanceService,
    MemoryCatalogStore,
)
from repro.core import Predicate, Table, WriterOptions

OPTS = WriterOptions(rows_per_page=256, rows_per_group=1024)


def _batch(start, n):
    rng = np.random.default_rng(start)
    return Table(
        {
            "id": np.arange(start, start + n, dtype=np.int64),
            "score": rng.random(n).astype(np.float32),
        }
    )


def test_bench_commit_throughput_under_contention():
    n_threads, commits_each, rows = 4, 10, 500
    table = CatalogTable.create(MemoryCatalogStore())
    barrier = threading.Barrier(n_threads)

    def writer(k):
        barrier.wait()
        for i in range(commits_each):
            start = (k * commits_each + i) * rows
            table.append(_batch(start, rows), options=OPTS)

    threads = [
        threading.Thread(target=writer, args=(k,))
        for k in range(n_threads)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0

    head = table.current_snapshot()
    total = n_threads * commits_each
    assert head.snapshot_id == total  # no lost updates, no id gaps
    assert head.live_rows == total * rows
    lines = [
        f"writers: {n_threads} threads x {commits_each} commits "
        f"({rows} rows each)",
        f"committed snapshots: {head.snapshot_id} "
        f"(every commit landed, contiguous ids)",
        f"conflict replays:    {table.stats.conflicts} "
        f"(optimistic retries, no aborts: {table.stats.aborts})",
        f"wall clock:          {elapsed * 1e3:8.1f} ms "
        f"({total / elapsed:,.0f} commits/s)",
    ]
    report("catalog_commit_contention", lines)


def test_bench_maintenance_rollup_reclaims_bytes():
    table = CatalogTable.create(MemoryCatalogStore())
    n_files, rows = 12, 1_000
    for i in range(n_files):
        table.append(_batch(i * rows, rows), options=OPTS)
    # GDPR-ish deletes scatter dead rows across every file
    table.delete(Predicate("id", min_value=200, max_value=3_199))
    head = table.current_snapshot()
    bytes_before = head.total_bytes
    files_before = len(head.files)
    live_before = np.sort(np.asarray(table.read(["id"]).column("id")))

    service = MaintenanceService(
        table,
        MaintenancePolicy(
            rollup_small_file_rows=2 * rows,
            rollup_target_rows=8 * rows,
            compact_deleted_fraction=0.2,
            keep_snapshots=2,
            writer_options=OPTS,
        ),
    )
    t0 = time.perf_counter()
    mreport = service.run_once()
    elapsed = time.perf_counter() - t0

    head = table.current_snapshot()
    live_after = np.sort(np.asarray(table.read(["id"]).column("id")))
    assert np.array_equal(live_before, live_after)
    assert mreport.bytes_reclaimed > 0
    assert len(head.files) < files_before
    lines = [
        f"ingest: {n_files} files x {rows:,} rows, then "
        f"{mreport.jobs_planned} maintenance jobs",
        f"files:  {files_before} -> {len(head.files)} "
        f"(merged {mreport.files_merged}, "
        f"compacted {mreport.files_compacted})",
        f"bytes:  {bytes_before:,} -> {head.total_bytes:,} at HEAD; "
        f"{mreport.bytes_reclaimed:,} reclaimed incl. expired files "
        f"({mreport.snapshots_expired} snapshots, "
        f"{mreport.data_files_deleted} data files GC'd)",
        f"wall clock: {elapsed * 1e3:8.1f} ms",
        "live rows identical before/after: True",
    ]
    report("catalog_maintenance_rollup", lines)
