"""§2.1 — deletion-compliance I/O costs.

Paper: "When deleting 2% of rows within a file, data rewrite I/O costs
can decrease by up to a factor of 50. Furthermore, storage costs are
nearly halved when full file rewrites are eliminated."

Reproduction: a 100k-row file sorted by user id; GDPR deletes remove a
*user's contiguous rows* (the production pattern — erasure requests
target users, and ad tables are bucketed/sorted by uid). We compare:

* level 2 in-place scrub (reads+writes only the affected pages +
  footer words), vs
* level 0 full rewrite (read everything, write everything back).

We also report the random-row worst case, where in-place updating
degrades gracefully toward the rewrite cost.
"""

import numpy as np
from reporting import report

from repro.core import (
    BullionReader,
    BullionWriter,
    Table,
    WriterOptions,
    delete_rows,
    rewrite_without_rows,
)
from repro.iosim import SimulatedStorage

N_ROWS = 100_000
ROWS_PER_PAGE = 1000
DELETE_FRACTION = 0.02


def _make_file():
    rng = np.random.default_rng(12)
    table = Table(
        {
            "uid": np.sort(rng.integers(0, N_ROWS // 20, N_ROWS)).astype(np.int64),
            "clicks": rng.integers(0, 10**6, N_ROWS).astype(np.int64),
            "score": rng.normal(size=N_ROWS),
            "tag": [b"t%d" % (i % 50) for i in range(N_ROWS)],
        }
    )
    dev = SimulatedStorage()
    BullionWriter(
        dev,
        options=WriterOptions(
            rows_per_page=ROWS_PER_PAGE, rows_per_group=10 * ROWS_PER_PAGE
        ),
    ).write(table)
    return dev, table


def _clustered_victims(n):
    """One user's contiguous block of rows (the GDPR request shape)."""
    start = 31_337
    return np.arange(start, start + n)


def test_bench_inplace_clustered_delete(benchmark):
    n_delete = int(N_ROWS * DELETE_FRACTION)

    def run():
        dev, _ = _make_file()
        return dev, delete_rows(dev, _clustered_victims(n_delete))

    dev, rep = benchmark.pedantic(run, rounds=3, iterations=1)
    assert BullionReader(dev).verify()

    # baseline: full rewrite of the same deletion
    dev2, _ = _make_file()
    target = SimulatedStorage()
    base = rewrite_without_rows(dev2, _clustered_victims(n_delete), target)

    write_factor = base.bytes_written / max(1, rep.bytes_written)
    io_factor = (base.bytes_read + base.bytes_written) / max(
        1, rep.bytes_read + rep.bytes_written
    )

    # random-row worst case for the honesty row
    dev3, _ = _make_file()
    rng = np.random.default_rng(1)
    rep_rand = delete_rows(
        dev3, rng.choice(N_ROWS, size=n_delete, replace=False)
    )

    lines = [
        f"file: {N_ROWS:,} rows x 4 cols ({dev.size:,} B), "
        f"delete {n_delete:,} rows (2%)",
        f"{'strategy':34s} {'read_B':>12} {'written_B':>12} pages",
        f"{'level 2 in-place (user-clustered)':34s} {rep.bytes_read:>12,} "
        f"{rep.bytes_written:>12,} {rep.pages_rewritten:5d}",
        f"{'level 0 full rewrite':34s} {base.bytes_read:>12,} "
        f"{base.bytes_written:>12,}     -",
        f"{'level 2 in-place (random rows)':34s} {rep_rand.bytes_read:>12,} "
        f"{rep_rand.bytes_written:>12,} {rep_rand.pages_rewritten:5d}",
        f"rewrite-I/O reduction (clustered): {write_factor:5.1f}x "
        f"(paper: 'up to a factor of 50')",
        f"total-I/O reduction (clustered):   {io_factor:5.1f}x",
    ]
    report("deletion_compliance", lines)
    assert write_factor > 10  # order-of-magnitude class win
    assert rep.pages_rewritten < 4 * (n_delete // ROWS_PER_PAGE + 2)


def test_bench_deletion_vector_only(benchmark):
    dev, _ = _make_file()
    rows = _clustered_victims(50)

    def run():
        return delete_rows(dev, rows, level=1)

    rep = benchmark.pedantic(run, rounds=3, iterations=1)
    assert rep.pages_rewritten == 0


def test_bench_read_after_delete(benchmark):
    dev, table = _make_file()
    delete_rows(dev, _clustered_victims(2000))

    def read():
        return BullionReader(dev).project(["clicks"])

    out = benchmark(read)
    assert out.num_rows == N_ROWS - 2000
