"""Shared reporting helper for the benchmark suite.

Every bench regenerates one of the paper's tables/figures and records
its series here: printed to stdout (visible with ``-s``) and persisted
under ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can cite
measured numbers.

Each ``report()`` call additionally writes a machine-readable
``BENCH_<experiment>.json`` at the repo root (schema
``bench_report/v1``): the human-readable lines, any structured ``data``
the bench passes, and a full :mod:`repro.obs` metrics-registry snapshot
taken at report time — so every benchmark artifact carries the I/O,
pushdown, and latency counters that produced its wall-clock numbers.
``repro-inspect metrics BENCH_<experiment>.json`` renders the embedded
snapshot; benches with a custom JSON artifact (``bench_codecs``)
overwrite the generic file with their richer schema and embed the same
``"metrics"`` key themselves.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def registry_snapshot_dict() -> dict:
    """The process-wide metrics registry as an ``export_dict`` payload."""
    from repro.obs.metrics import default_registry

    return default_registry().export_dict()


def report(experiment: str, lines: list[str], data: dict | None = None) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    banner = f"\n=== {experiment} ===\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as f:
        f.write(text + "\n")
    payload = {
        "schema": "bench_report/v1",
        "experiment": experiment,
        "lines": lines,
        "data": data or {},
        "metrics": registry_snapshot_dict(),
    }
    json_path = os.path.join(REPO_ROOT, f"BENCH_{experiment}.json")
    with open(json_path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
