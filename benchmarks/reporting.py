"""Shared reporting helper for the benchmark suite.

Every bench regenerates one of the paper's tables/figures and records
its series here: printed to stdout (visible with ``-s``) and persisted
under ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can cite
measured numbers.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(experiment: str, lines: list[str]) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join(lines)
    banner = f"\n=== {experiment} ===\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{experiment}.txt"), "w") as f:
        f.write(text + "\n")
