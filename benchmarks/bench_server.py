"""Serving layer: closed-loop load, warm vs cold, 1/4/16 clients.

Two claims the ISSUE-10 serving layer makes measurable:

* a warm server answers repeat plans from the result cache without
  touching storage at all — zero manifest reads, zero footer opens,
  and a warm p99 far below a cold p50 (every cold request carries a
  distinct predicate, so it always misses the cache and pays the full
  decode);
* the admission-controlled worker pool holds that gap under client
  concurrency: the same cells run with 1, 4 and 16 closed-loop
  clients, each pacing itself to an offered target QPS and reporting
  what it actually achieved.
"""

import math
import threading
import time

import numpy as np
from reporting import report

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core import Table
from repro.server import BullionServer, ServerClient, TableService

N_FILES, ROWS = 4, 20_000
DURATION_S = 1.2
COLD_QPS, WARM_QPS = 40.0, 400.0
CLIENT_COUNTS = (1, 4, 16)
WARM_PLAN = {"aggregates": ["count", "sum(v)"], "where": "region >= 1"}


class CountingCatalogStore(MemoryCatalogStore):
    """Counts manifest reads and data-file opens between phases."""

    def __init__(self) -> None:
        super().__init__("bench-server")
        self.meta_reads = 0
        self.data_opens = 0

    def read_metadata(self, name: str) -> bytes:
        self.meta_reads += 1
        return super().read_metadata(name)

    def open_data(self, file_id: str):
        self.data_opens += 1
        return super().open_data(file_id)

    def begin_phase(self) -> None:
        self.meta_reads = 0
        self.data_opens = 0


def _build():
    store = CountingCatalogStore()
    table = CatalogTable.create(store)
    rng = np.random.default_rng(7)
    for k in range(N_FILES):
        lo = k * ROWS
        table.append(Table({
            "ts": np.arange(lo, lo + ROWS, dtype=np.int64),
            "v": rng.normal(size=ROWS),
            "region": rng.integers(0, 5, size=ROWS).astype(np.int32),
        }))
    return store, table


def _client_loop(host, port, plans, interval_s, barrier, out, errors):
    try:
        with ServerClient(host, port, timeout=60.0) as c:
            barrier.wait()
            start = time.perf_counter()
            for i, plan in enumerate(plans):
                wake = start + i * interval_s
                now = time.perf_counter()
                if wake > now:
                    time.sleep(wake - now)
                t0 = time.perf_counter()
                c.query(
                    "events",
                    plan["aggregates"],
                    where=plan["where"],
                    deadline_ms=60_000,
                )
                out.append(time.perf_counter() - t0)
    except BaseException as exc:  # pragma: no cover - diagnostics
        errors.append(exc)


def _run_cell(server, n_clients, qps_total, plans_for):
    """Closed-loop cell: each client paces itself to its QPS share."""
    per_client_qps = qps_total / n_clients
    requests_each = max(2, math.ceil(DURATION_S * per_client_qps))
    interval_s = 1.0 / per_client_qps
    barrier = threading.Barrier(n_clients + 1)
    latencies, errors, threads = [], [], []
    for k in range(n_clients):
        plans = [plans_for(k, i) for i in range(requests_each)]
        t = threading.Thread(
            target=_client_loop,
            args=(server.host, server.port, plans, interval_s,
                  barrier, latencies, errors),
            daemon=True,
        )
        t.start()
        threads.append(t)
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout=120.0)
    elapsed = time.perf_counter() - t0
    assert not errors, f"client failed: {errors[0]!r}"
    total = n_clients * requests_each
    assert len(latencies) == total
    ms = np.sort(np.asarray(latencies)) * 1e3
    return {
        "clients": n_clients,
        "requests": total,
        "offered_qps": round(qps_total, 1),
        "achieved_qps": round(total / elapsed, 1),
        "p50_ms": round(float(np.percentile(ms, 50)), 3),
        "p99_ms": round(float(np.percentile(ms, 99)), 3),
    }


def test_bench_server_closed_loop_warm_vs_cold():
    store, table = _build()
    service = TableService(
        {"events": table},
        workers=8,
        max_queue=64,
        queue_timeout_s=30.0,
        default_deadline_s=60.0,
        result_cache_entries=1024,
    )
    server = BullionServer(service)
    cold_seq = iter(range(10**6))

    def cold_plan(_k, _i):
        # a never-repeated predicate constant: always a result-cache
        # miss, so every request pays the full scan + aggregate
        c = next(cold_seq)
        return {
            "aggregates": ["count", "sum(v)"],
            "where": f"v > {c / 1000 - 4.0}",
        }

    def warm_plan(_k, _i):
        return WARM_PLAN

    cells = {}
    try:
        # open every footer once so "cold" isolates the decode cost,
        # not first-contact metadata parsing
        with ServerClient(server.host, server.port, timeout=60.0) as c:
            c.query("events", WARM_PLAN["aggregates"],
                    where=WARM_PLAN["where"], deadline_ms=60_000)
        for n in CLIENT_COUNTS:
            cells[f"cold/{n}"] = _run_cell(server, n, COLD_QPS, cold_plan)
        store.begin_phase()
        for n in CLIENT_COUNTS:
            cells[f"warm/{n}"] = _run_cell(server, n, WARM_QPS, warm_plan)
        warm_manifest_reads = store.meta_reads
        warm_footer_opens = store.data_opens
    finally:
        server.close()

    # the headline claims, re-checked in CI from BENCH_server.json
    assert warm_manifest_reads == 0, "warm phase re-read a manifest"
    assert warm_footer_opens == 0, "warm phase re-opened a footer"
    for n in CLIENT_COUNTS:
        cold, warm = cells[f"cold/{n}"], cells[f"warm/{n}"]
        assert warm["p99_ms"] < cold["p50_ms"], (
            f"{n} clients: warm p99 {warm['p99_ms']}ms not below "
            f"cold p50 {cold['p50_ms']}ms"
        )

    lines = [
        f"table: {N_FILES} files x {ROWS:,} rows; server: 8 workers, "
        f"queue 64; closed-loop clients, {DURATION_S:.1f}s cells",
        f"cold = unique predicate per request (always a result-cache "
        f"miss, offered {COLD_QPS:.0f} QPS total)",
        f"warm = one repeated plan (result-cache hit, offered "
        f"{WARM_QPS:.0f} QPS total)",
        "",
        "cell      clients    offered   achieved    p50 ms    p99 ms",
    ]
    for name in cells:
        r = cells[name]
        lines.append(
            f"{name:<12}{r['clients']:>5}{r['offered_qps']:>11.1f}"
            f"{r['achieved_qps']:>11.1f}{r['p50_ms']:>10.3f}"
            f"{r['p99_ms']:>10.3f}"
        )
    lines += [
        "",
        f"warm-phase manifest reads: {warm_manifest_reads}, "
        f"footer opens: {warm_footer_opens} (metadata parsed once "
        f"for the life of the server)",
    ]
    report("server", lines, data={
        "schema": "bench_server/v1",
        "table": {"files": N_FILES, "rows_per_file": ROWS},
        "targets": {"cold_qps": COLD_QPS, "warm_qps": WARM_QPS},
        "cells": cells,
        "warm_manifest_reads": warm_manifest_reads,
        "warm_footer_opens": warm_footer_opens,
    })
