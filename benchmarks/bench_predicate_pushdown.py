"""Predicate pushdown: selectivity sweep over a multi-file catalog.

The expression-engine refactor's headline claim: a selective scan
should cost what its *matches* cost, not what the table holds. One
``where=`` expression skips work at three layers —

* catalog file pruning (manifest column min/max; pruned files are
  never even opened),
* footer zone maps (row groups skipped with zero data I/O),
* vectorized decode-time filtering with late materialization
  (residual projected chunks fetched only for groups with survivors).

This bench writes a multi-file catalog table on a latency-modelled
backend (every open file charges seek latency + bandwidth per
operation, accumulated — not slept), sweeps filter selectivity
100% -> 0.1%, and reports modelled device time plus what each layer
skipped. The acceptance bar asserted here: a <=1% selectivity scan is
>=5x faster than the unfiltered scan, with nonzero pruning at all
three layers.
"""

import numpy as np
from reporting import report

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core import ScanStats, Table, WriterOptions
from repro.expr import col
from repro.iosim import LatencyModelledStorage, SeekModel

N_FILES = 8
ROWS_PER_FILE = 16_384
ROWS_PER_GROUP = 2_048
ROWS_PER_PAGE = 512
MODEL = SeekModel(seek_latency_s=1e-3, bandwidth_bytes_per_s=5e8)


class LatencyModelledCatalogStore(MemoryCatalogStore):
    """Memory store whose data files charge modelled device time.

    Every ``open_data`` wraps the file in a fresh
    :class:`LatencyModelledStorage` and remembers it, so a run's total
    modelled elapsed time is the sum over the wrappers it opened — and
    a file pruned from manifest stats contributes exactly zero.
    """

    def __init__(self) -> None:
        super().__init__("latency-catalog")
        self.opened: list[LatencyModelledStorage] = []

    def open_data(self, file_id: str):
        wrapper = LatencyModelledStorage(
            super().open_data(file_id), MODEL, sleep=False
        )
        self.opened.append(wrapper)
        return wrapper

    def begin_run(self) -> None:
        self.opened = []

    def elapsed_s(self) -> float:
        return sum(w.elapsed_s for w in self.opened)


def _build_table(store) -> CatalogTable:
    cat = CatalogTable.create(store)
    rng = np.random.default_rng(0)
    for k in range(N_FILES):
        lo = k * ROWS_PER_FILE
        ids = np.arange(lo, lo + ROWS_PER_FILE, dtype=np.int64)
        cat.append(
            Table(
                {
                    # sorted event time: the paper's batch-read layout,
                    # which makes both file ranges and zone maps tight
                    "ts": ids,
                    "score": rng.random(ROWS_PER_FILE),
                    "value": rng.normal(size=ROWS_PER_FILE).astype(
                        np.float32
                    ),
                    "tag": [
                        f"k{int(v)}".encode()
                        for v in rng.integers(0, 50, ROWS_PER_FILE)
                    ],
                    "payload": [b"x" * 64] * ROWS_PER_FILE,
                }
            ),
            options=WriterOptions(
                rows_per_page=ROWS_PER_PAGE, rows_per_group=ROWS_PER_GROUP
            ),
        )
    return cat


def test_bench_selectivity_sweep():
    store = LatencyModelledCatalogStore()
    cat = _build_table(store)
    total_rows = N_FILES * ROWS_PER_FILE
    columns = ["ts", "score", "value", "payload"]

    def run(where):
        store.begin_run()
        stats = ScanStats()
        with cat.pin() as snap:
            if where is None:
                out = snap.read(columns, scan_stats=stats)
            else:
                out = snap.read(columns, where=where, scan_stats=stats)
        return out, stats, store.elapsed_s()

    _base_out, _base_stats, base_s = run(None)

    lines = [
        f"table: {N_FILES} files x {ROWS_PER_FILE:,} rows, "
        f"groups of {ROWS_PER_GROUP:,}, 4 columns "
        f"(seek {MODEL.seek_latency_s * 1e3:.0f} ms, "
        f"{MODEL.bandwidth_bytes_per_s / 1e9:.1f} GB/s modelled)",
        f"unfiltered scan: {base_s * 1e3:8.1f} ms modelled device time",
        "",
        f"{'selectivity':>11} {'rows':>8} {'files':>11} {'groups':>11} "
        f"{'rows skipped':>12} {'time':>10} {'speedup':>8}",
    ]
    speedups = {}
    for frac in (1.0, 0.25, 0.01, 0.001):
        hi = max(1, int(total_rows * frac))
        where = col("ts") < hi
        out, stats, elapsed = run(where)
        assert out.num_rows == hi
        rows_skipped = stats.rows_pruned + (
            stats.rows_scanned - stats.rows_matched
        )
        speedups[frac] = base_s / elapsed
        lines.append(
            f"{frac:>11.1%} {out.num_rows:>8,} "
            f"{stats.files_pruned:>4}/{N_FILES} pruned "
            f"{stats.groups_pruned:>4} pruned "
            f"{rows_skipped:>12,} {elapsed * 1e3:>8.1f} ms "
            f"{base_s / elapsed:>7.1f}x"
        )

    # the acceptance bar: <=1% selectivity, >=5x, every layer skipping.
    # a boundary-straddling range shows decode-time filtering too
    edge = col("ts").between(ROWS_PER_GROUP // 2, ROWS_PER_GROUP // 2 + 99)
    out, stats, elapsed = run(edge)
    assert out.num_rows == 100
    assert stats.files_pruned > 0, "no catalog-level file pruning"
    assert stats.groups_pruned > 0, "no zone-map group pruning"
    assert stats.rows_scanned > stats.rows_matched > 0, (
        "no decode-time row filtering"
    )
    edge_speedup = base_s / elapsed
    assert edge_speedup >= 5.0, (
        f"1%-selectivity speedup {edge_speedup:.1f}x < 5x"
    )
    assert speedups[0.01] >= 5.0
    lines += [
        "",
        f"boundary-straddling 100-row range: {elapsed * 1e3:.1f} ms "
        f"({edge_speedup:.1f}x), files {stats.files_pruned}/{N_FILES} "
        f"pruned, groups {stats.groups_pruned} pruned, rows "
        f"{stats.rows_scanned - stats.rows_matched:,} filtered at "
        f"decode time",
        "all three pushdown layers active: True",
    ]
    report("predicate_pushdown", lines)


def test_bench_late_materialization_io():
    """Bytes actually moved: filter-only columns vs full projection."""
    store = LatencyModelledCatalogStore()
    cat = _build_table(store)
    columns = ["ts", "score", "value", "payload"]
    # string columns carry no zone maps, so every group must decode
    # the tag chunk — but the projection's four chunks are only
    # fetched for groups with survivors, which is none of them
    where = col("tag") == "absent"

    store.begin_run()
    stats = ScanStats()
    with cat.pin() as snap:
        out = snap.read(columns, where=where, scan_stats=stats)
    filtered_bytes = sum(w.stats.bytes_read for w in store.opened)

    store.begin_run()
    with cat.pin() as snap:
        full = snap.read(columns)
    full_bytes = sum(w.stats.bytes_read for w in store.opened)

    assert out.num_rows == 0
    assert stats.groups_pruned == 0  # zone maps cannot help strings
    assert stats.chunks_skipped == stats.groups_empty * len(columns) > 0
    assert filtered_bytes < full_bytes / 2
    report(
        "predicate_pushdown_late_materialization",
        [
            f"filter: tag == 'absent' ({out.num_rows} of "
            f"{full.num_rows:,} rows match; no zone maps for strings)",
            f"full projection read:     {full_bytes:>12,} bytes",
            f"late-materialized read:   {filtered_bytes:>12,} bytes "
            f"({full_bytes / filtered_bytes:.1f}x fewer)",
            f"residual chunks skipped:  {stats.chunks_skipped:>12,} "
            f"(groups whose filter matched nothing)",
        ],
    )
