"""Object-store scan: ranged-get coalescing + the tiered chunk cache.

On the modelled object store every request costs a fixed round trip
(25 ms) regardless of size, so request *count* — not bytes — dominates
a scan's wall-clock. This bench replays one pruned multi-file catalog
scan through :class:`~repro.iosim.ObjectStorage` in four
configurations:

* **naive** — no cache, coalescing off: one GET per chunk, the
  pre-optimization baseline;
* **coalesced** — the prefetch planner merges adjacent chunk extents
  into single ranged GETs (and the footer+tail into one request);
* **coalesced + tiered cache, cold** — first scan through a shared
  :class:`~repro.core.TieredChunkCache` whose small memory tier spills
  to a bounded disk tier;
* **warm** — the same scan again: every data chunk comes from the
  cache (memory or promoted from disk), so the backend sees only the
  per-file footer reads.

Acceptance bars asserted here: coalescing alone cuts requests >=2x;
the warm scan issues zero data GETs (backend requests == file opens)
and <=25% of the naive request count; warm modelled wall-clock is
>=5x faster than naive; results are byte-identical across all four
configurations.
"""

import numpy as np
from reporting import report

from repro.catalog import CatalogTable, MemoryCatalogStore
from repro.core import Table, TieredChunkCache, WriterOptions
from repro.expr import col
from repro.iosim import OBJECT_STORE_MODEL, ObjectStorage

N_FILES = 6
# the shape keeps the footer under the reader's 4 KiB speculative
# tail read, so opening a file costs exactly one metadata GET
ROWS_PER_FILE = 2_048
ROWS_PER_GROUP = 512
ROWS_PER_PAGE = 256
N_GROUPS = ROWS_PER_FILE // ROWS_PER_GROUP


class ObjectCatalogStore(MemoryCatalogStore):
    """Memory store whose data files are served through ObjectStorage.

    Every ``open_data`` wraps the (stable, per-file) inner device in a
    fresh accounting wrapper and remembers it, so a run's request
    count, bytes moved and modelled elapsed time are sums over the
    wrappers it opened — and a file pruned from manifest stats
    contributes exactly zero requests.
    """

    def __init__(self) -> None:
        super().__init__("object-catalog")
        self.opened: list[ObjectStorage] = []

    def open_data(self, file_id: str):
        wrapper = ObjectStorage(super().open_data(file_id))
        self.opened.append(wrapper)
        return wrapper

    def begin_run(self) -> None:
        self.opened = []

    def requests(self) -> int:
        return sum(w.request_count for w in self.opened)

    def gets(self) -> int:
        return sum(
            1 for w in self.opened for r in w.requests if r.op == "GET"
        )

    def bytes_moved(self) -> int:
        return sum(w.bytes_moved() for w in self.opened)

    def elapsed_s(self) -> float:
        return sum(w.elapsed_s for w in self.opened)


def _build_table(store) -> None:
    rng = np.random.default_rng(7)
    cat = CatalogTable.create(store)
    for k in range(N_FILES):
        lo = k * ROWS_PER_FILE
        ids = np.arange(lo, lo + ROWS_PER_FILE, dtype=np.int64)
        cat.append(
            Table(
                {
                    "ts": ids,  # sorted: manifest ranges prune whole files
                    "score": rng.random(ROWS_PER_FILE),
                    "value": rng.normal(size=ROWS_PER_FILE).astype(
                        np.float32
                    ),
                    "clicks": rng.integers(
                        0, 100, ROWS_PER_FILE, dtype=np.int64
                    ),
                    "weight": rng.random(ROWS_PER_FILE),
                    "payload": [b"x" * 48] * ROWS_PER_FILE,
                }
            ),
            options=WriterOptions(
                rows_per_page=ROWS_PER_PAGE, rows_per_group=ROWS_PER_GROUP
            ),
        )


def test_bench_object_store_scan(tmp_path):
    store = ObjectCatalogStore()
    _build_table(store)
    columns = ["ts", "score", "value", "clicks", "weight", "payload"]
    # covers files 0 and 1 exactly: the other four never open
    where = col("ts") < 2 * ROWS_PER_FILE

    cache = TieredChunkCache(
        64 << 10,  # small memory tier: forces spilling...
        disk_bytes=16 << 20,  # ...into the bounded disk tier
        disk_dir=str(tmp_path / "spill"),
        name="bench",
        mirror=False,
    )
    configs = [
        ("naive", None, {"chunk_cache_size": 0, "coalesce_gap": -1}),
        ("coalesced", None, {"chunk_cache_size": 0, "coalesce_gap": 0}),
        ("tiered cold", cache, {"coalesce_gap": 0}),
        ("tiered warm", cache, {"coalesce_gap": 0}),
    ]
    results = {}
    for label, chunk_cache, reader_options in configs:
        cat = CatalogTable(
            store, chunk_cache=chunk_cache, reader_options=reader_options
        )
        store.begin_run()
        with cat.pin() as snap:
            out = snap.read(columns, where=where)
        results[label] = {
            "out": out,
            "requests": store.requests(),
            "opens": len(store.opened),
            "bytes": store.bytes_moved(),
            "elapsed_s": store.elapsed_s(),
        }

    naive, coal = results["naive"], results["coalesced"]
    cold, warm = results["tiered cold"], results["tiered warm"]

    # correctness first: identical rows under every configuration
    assert naive["out"].num_rows == 2 * ROWS_PER_FILE
    for label in ("coalesced", "tiered cold", "tiered warm"):
        assert results[label]["out"].equals(naive["out"]), label

    # coalescing alone: >=2x fewer requests, no cache involved
    assert naive["requests"] >= 2 * coal["requests"], (
        naive["requests"],
        coal["requests"],
    )
    # warm cache: the backend sees only the per-file footer reads
    warm_data_gets = warm["requests"] - warm["opens"]
    assert warm_data_gets == 0, f"{warm_data_gets} warm data GETs"
    assert warm["requests"] <= 0.25 * naive["requests"]
    # the disk tier actually participated: spilled cold, read back warm
    assert cache.stats.spills > 0
    assert cache.stats.disk_hits > 0
    assert cache.stats.checksum_failures == 0
    # combined modelled wall-clock: >=5x over the naive baseline
    speedup = naive["elapsed_s"] / warm["elapsed_s"]
    assert speedup >= 5.0, f"warm speedup {speedup:.1f}x < 5x"

    lines = [
        f"table: {N_FILES} files x {ROWS_PER_FILE:,} rows "
        f"(groups of {ROWS_PER_GROUP}), {len(columns)} columns; "
        f"filter keeps 2 files ({2 * ROWS_PER_FILE:,} rows)",
        f"object store model: "
        f"{OBJECT_STORE_MODEL.request_latency_s * 1e3:.0f} ms/request, "
        f"{OBJECT_STORE_MODEL.bandwidth_bytes_per_s / 1e6:.0f} MB/s",
        "",
        f"{'configuration':16} {'requests':>9} {'bytes':>12} "
        f"{'modelled':>11} {'vs naive':>9}",
    ]
    for label in ("naive", "coalesced", "tiered cold", "tiered warm"):
        r = results[label]
        lines.append(
            f"{label:16} {r['requests']:>9,} {r['bytes']:>12,} "
            f"{r['elapsed_s'] * 1e3:>9.1f}ms "
            f"{naive['elapsed_s'] / r['elapsed_s']:>8.1f}x"
        )
    s = cache.stats
    lines += [
        "",
        f"coalescing alone: "
        f"{naive['requests'] / coal['requests']:.1f}x fewer requests",
        f"warm scan: {warm_data_gets} data GETs "
        f"({warm['opens']} footer reads only), "
        f"{warm['requests'] / naive['requests']:.1%} of naive requests",
        f"tiered cache: {s.memory_hits:,} memory hits, "
        f"{s.disk_hits:,} disk hits, {s.spills:,} spills "
        f"({s.spill_bytes:,} bytes spilled, "
        f"{cache.disk_used:,} bytes on disk)",
        f"warm modelled speedup over naive: {speedup:.1f}x",
    ]
    report(
        "object_store",
        lines,
        data={
            label: {
                k: v for k, v in r.items() if k != "out"
            }
            for label, r in results.items()
        }
        | {
            "coalesce_request_reduction": naive["requests"]
            / coal["requests"],
            "warm_speedup": speedup,
            "cache": {
                "memory_hits": s.memory_hits,
                "disk_hits": s.disk_hits,
                "misses": s.misses,
                "spills": s.spills,
                "spill_bytes": s.spill_bytes,
            },
        },
    )
