"""Table 2 — the catalog of column encoding schemes.

Paper: a catalog of 20+ encodings "found in existing storage systems
and formats" unified behind Bullion's modular interface. Reproduction:
run every scheme on its natural workload and report compression ratio
plus encode/decode throughput — the data the cascading selector's
objective consumes.
"""

import time

import numpy as np
from reporting import report

from repro.encodings import (
    ALP,
    BitShuffle,
    Chimp,
    Chunked,
    Constant,
    Delta,
    Dictionary,
    FastBP128,
    FastPFOR,
    FixedBitWidth,
    FrameOfReference,
    FSST,
    Gorilla,
    Huffman,
    ListEncoding,
    MainlyConstant,
    Nullable,
    Pseudodecimal,
    RLE,
    Roaring,
    Sentinel,
    SparseBool,
    SparseListDelta,
    Trivial,
    Varint,
    ZigZag,
    decode_blob,
    encode_blob,
)

RNG = np.random.default_rng(6)


def _raw_bytes(values):
    if isinstance(values, np.ndarray):
        return values.nbytes
    if values and isinstance(values[0], np.ndarray):
        return sum(v.nbytes for v in values)
    return sum(len(v) for v in values if v is not None)


def _workloads():
    n = 20000
    small = RNG.integers(0, 64, n).astype(np.int64)
    runs = np.resize(
        np.repeat(RNG.integers(0, 8, 400), RNG.integers(10, 100, 400)), n
    ).astype(np.int64)
    sorted_ids = np.sort(RNG.integers(0, 10**9, n)).astype(np.int64)
    signed = RNG.integers(-(10**6), 10**6, n).astype(np.int64)
    decimals = np.round(RNG.uniform(0, 1000, n // 4), 2)
    gauss = RNG.normal(size=n // 4)
    series = 20.0 + np.cumsum(RNG.normal(0, 0.01, n // 4))
    sparse_bools = RNG.random(n) < 0.01
    urls = [f"https://x.com/watch?v={i % 300}".encode() for i in range(3000)]
    nullable = np.ma.MaskedArray(small[:4000], mask=RNG.random(4000) < 0.2)
    mostly = np.where(RNG.random(n) < 0.02, signed, 7).astype(np.int64)
    window = list(RNG.integers(0, 10**6, 256))
    windows = []
    for _ in range(100):
        window = ([int(RNG.integers(0, 10**6))] + window)[:256]
        windows.append(np.array(window, dtype=np.int64))
    return [
        ("trivial", Trivial(), signed),
        ("fixed_bit_width", FixedBitWidth(), small),
        ("varint", Varint(), small),
        ("zigzag", ZigZag(), signed),
        ("rle", RLE(), runs),
        ("dictionary", Dictionary(), small),
        ("delta", Delta(), sorted_ids),
        ("for", FrameOfReference(), signed),
        ("huffman", Huffman(), small),
        ("fastpfor", FastPFOR(), small),
        ("fastbp128", FastBP128(), small),
        ("constant", Constant(), np.full(n, 3, dtype=np.int64)),
        ("mainly_constant", MainlyConstant(), mostly),
        ("nullable", Nullable(), nullable),
        ("sentinel", Sentinel(), nullable),
        ("sparse_bool", SparseBool(), sparse_bools),
        ("roaring", Roaring(), sparse_bools),
        ("bitshuffle", BitShuffle(), small),
        ("chunked", Chunked(), runs),
        ("fsst", FSST(), urls),
        ("gorilla", Gorilla(), series),
        ("chimp", Chimp(), series),
        ("pseudodecimal", Pseudodecimal(), decimals),
        ("alp", ALP(), decimals),
        ("list", ListEncoding(), windows),
        ("sparse_list_delta", SparseListDelta(), windows),
    ]


def test_bench_catalog_table(benchmark):
    rows = []
    for name, encoding, data in _workloads():
        t0 = time.perf_counter()
        blob = encode_blob(data, encoding)
        t1 = time.perf_counter()
        decode_blob(blob)
        t2 = time.perf_counter()
        raw = _raw_bytes(data)
        rows.append(
            (name, raw / len(blob), raw / max(t1 - t0, 1e-9) / 1e6,
             raw / max(t2 - t1, 1e-9) / 1e6)
        )
    benchmark(encode_blob, RNG.integers(0, 64, 20000).astype(np.int64),
              FixedBitWidth())
    lines = ["encoding            ratio   enc_MB/s   dec_MB/s"]
    for name, ratio, enc_mbs, dec_mbs in rows:
        lines.append(
            f"{name:18s}  {ratio:6.1f}x  {enc_mbs:8.1f}  {dec_mbs:9.1f}"
        )
    report("table2_encodings", lines)
    assert len(rows) >= 23  # full catalog exercised


def test_bench_encode_fixed_bit_width(benchmark):
    data = RNG.integers(0, 64, 100000).astype(np.int64)
    benchmark(encode_blob, data, FixedBitWidth())


def test_bench_decode_fixed_bit_width(benchmark):
    data = RNG.integers(0, 64, 100000).astype(np.int64)
    blob = encode_blob(data, FixedBitWidth())
    benchmark(decode_blob, blob)


def test_bench_encode_fastbp128(benchmark):
    data = RNG.integers(0, 1000, 100000).astype(np.int64)
    benchmark(encode_blob, data, FastBP128())


def test_bench_decode_rle_cascade(benchmark):
    data = np.resize(
        np.repeat(RNG.integers(0, 8, 400), RNG.integers(10, 100, 400)), 100000
    ).astype(np.int64)
    blob = encode_blob(data, RLE(values_child=Dictionary()))
    benchmark(decode_blob, blob)
