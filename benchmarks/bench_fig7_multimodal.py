"""Fig 7 / §2.5 — multimodal data layout and quality-aware organization.

Paper: (a) inlining reduced-resolution highlight frames in the columnar
meta table removes the per-sample bounce to the row-oriented media
table; (b) presorting rows by quality score makes the high-quality
training subset contiguous, cutting seeks and read amplification.
Reproduction: run a training epoch over the dual-table layout in all
four configurations and compare I/O counters and modelled device time.
"""

import pytest
from reporting import report

from repro.multimodal import MultimodalDataset
from repro.workloads.multimodal_gen import MultimodalConfig, generate_samples

CONFIG = MultimodalConfig(n_samples=1500, seed=4)
THRESHOLD = 0.55


def _dataset(presort: bool) -> MultimodalDataset:
    ds = MultimodalDataset(
        presort_by_quality=presort, rows_per_page=64, rows_per_group=64
    )
    ds.ingest(generate_samples(CONFIG))
    return ds


@pytest.fixture(scope="module")
def sorted_ds():
    return _dataset(True)


@pytest.fixture(scope="module")
def unsorted_ds():
    return _dataset(False)


def test_bench_epoch_inline_presorted(benchmark, sorted_ds):
    rep = benchmark(sorted_ds.train_epoch, THRESHOLD)
    assert rep.samples_read > 0


def test_bench_epoch_media_bounce(benchmark, sorted_ds):
    rep = benchmark(
        sorted_ds.train_epoch, THRESHOLD, use_inline_highlights=False
    )
    assert rep.media.reads > 0


def test_bench_fig7_comparison(benchmark, sorted_ds, unsorted_ds):
    inline_sorted = sorted_ds.train_epoch(THRESHOLD)
    inline_unsorted = unsorted_ds.train_epoch(THRESHOLD)
    bounce_sorted = sorted_ds.train_epoch(
        THRESHOLD, use_inline_highlights=False
    )
    benchmark(sorted_ds.train_epoch, THRESHOLD)

    def row(name, rep):
        return (
            f"{name:26s}  {rep.samples_read:6d}  {rep.meta.bytes_read:>11,}  "
            f"{rep.media.bytes_read:>11,}  {rep.meta.seeks + rep.media.seeks:5d}  "
            f"{rep.selected_runs:5d}  {rep.modelled_time() * 1e3:8.2f}"
        )

    lines = [
        f"{len(generate_samples(CONFIG))} samples, quality >= {THRESHOLD}",
        "layout                      picked   meta_bytes  media_bytes  seeks"
        "   runs  time_ms",
        row("inline + quality presort", inline_sorted),
        row("inline + unsorted", inline_unsorted),
        row("media bounce + presort", bounce_sorted),
        "paper: inline highlights 'eliminate the latency overhead associated"
        " with external, fragmented I/O'; presorting 'improves contiguous"
        " access to high-quality video frames'",
    ]
    report("fig7_multimodal", lines)

    # shape checks: both Bullion techniques must win on their axis
    assert inline_sorted.media.bytes_read == 0
    assert bounce_sorted.media.bytes_read > 0
    assert inline_sorted.selected_runs < inline_unsorted.selected_runs
    assert inline_sorted.meta.bytes_read < inline_unsorted.meta.bytes_read
    assert inline_sorted.modelled_time() < bounce_sorted.modelled_time()
