"""Quickstart: write a Bullion file, project columns, delete rows.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BullionReader,
    BullionWriter,
    SimulatedStorage,
    Table,
    WriterOptions,
    delete_rows,
)


def main() -> None:
    rng = np.random.default_rng(0)
    n = 10_000

    # 1. an ML-ish table: ids, a float feature, a tag, a sequence feature
    table = Table(
        {
            "user_id": np.sort(rng.integers(0, 2_000, n)).astype(np.int64),
            "ctr_score": rng.random(n),
            "device": [b"ios" if i % 3 else b"android" for i in range(n)],
            "clk_seq": [
                rng.integers(0, 1_000_000, 8).astype(np.int64)
                for _ in range(n)
            ],
        }
    )

    # 2. write it (compliance level 2: deletion vectors + in-place scrub)
    storage = SimulatedStorage("quickstart.bullion")
    writer = BullionWriter(
        storage,
        options=WriterOptions(rows_per_page=1024, rows_per_group=4096),
    )
    footer = writer.write(table)
    print(f"wrote {footer.num_rows:,} rows, {footer.num_columns} columns, "
          f"{footer.num_pages} pages -> {storage.size:,} bytes")

    # 3. read back a projection (the typical ML access pattern)
    reader = BullionReader(storage)
    batch = reader.project(["user_id", "ctr_score"])
    print(f"projected 2 columns: {batch.num_rows:,} rows, "
          f"mean ctr {np.mean(batch.column('ctr_score')):.4f}")

    # 3b. the same read as a lazy scan: batches stream out while chunk
    # fetches run on a thread pool, and the footer's min/max stats
    # prune row groups the predicate cannot match
    from repro import Predicate

    scan = reader.scan(
        ["user_id", "ctr_score"],
        predicate=Predicate("user_id", min_value=1_000),
        batch_size=2048,
    )
    n_batches = sum(1 for _ in scan)
    print(f"scan(user_id >= 1000): {len(scan.row_groups)} row groups kept, "
          f"{n_batches} batches of <=2048 rows")

    # 4. verify integrity via the Merkle checksums
    print(f"checksums valid: {reader.verify()}")

    # 5. GDPR-style deletion of one user's rows, in place
    user = int(batch.column("user_id")[50])
    victims = np.flatnonzero(np.asarray(batch.column("user_id")) == user)
    report = delete_rows(storage, victims)
    print(
        f"deleted user {user}: {report.rows_deleted} rows, "
        f"{report.pages_rewritten} pages rewritten in place, "
        f"{report.bytes_written:,} bytes written "
        f"(file is {storage.size:,} bytes — no rewrite)"
    )

    after = BullionReader(storage)
    print(f"rows visible now: {after.project(['user_id']).num_rows:,}")
    print(f"checksums still valid: {after.verify()}")

    # 6. inspect the file layout (the parquet-tools equivalent)
    from repro.tools import describe

    print("\n" + describe(storage))

    # 7. background compaction reclaims the scrubbed rows' space
    from repro.core import compact

    compacted = SimulatedStorage("compacted.bullion")
    report = compact(storage, compacted)
    print(
        f"\ncompaction: {report.rows_in:,} -> {report.rows_out:,} rows, "
        f"reclaimed {report.bytes_reclaimed:,} bytes"
    )


if __name__ == "__main__":
    main()
