"""Multimodal LLM training data layout (§2.5, Fig 7).

Builds the dual-table layout — columnar meta table with inlined
highlight frames + Avro-like media table — ingests synthetic samples,
and contrasts the training read path with and without Bullion's two
optimizations (inline highlights, quality presorting).

Run:  python examples/multimodal_llm.py
"""

from repro.multimodal import MultimodalDataset
from repro.workloads.multimodal_gen import MultimodalConfig, generate_samples


def describe(name, rep):
    print(
        f"{name:30s} samples={rep.samples_read:4d}  "
        f"meta={rep.meta.bytes_read:>10,}B  media={rep.media.bytes_read:>10,}B  "
        f"seeks={rep.meta.seeks + rep.media.seeks:4d}  "
        f"contig_runs={rep.selected_runs:4d}  "
        f"modelled={rep.modelled_time() * 1e3:6.2f}ms"
    )


def main() -> None:
    samples = generate_samples(MultimodalConfig(n_samples=2000, seed=1))
    threshold = 0.6  # only high-quality samples train the model

    bullion = MultimodalDataset(
        presort_by_quality=True, rows_per_page=128, rows_per_group=128
    )
    bullion.ingest(samples)
    legacy = MultimodalDataset(
        presort_by_quality=False, rows_per_page=128, rows_per_group=128
    )
    legacy.ingest(samples)

    print(f"ingested {len(samples)} samples "
          f"(meta {bullion.meta_storage.size:,} B, "
          f"media {bullion.media_storage.size:,} B)\n")

    describe("bullion (inline + presort)", bullion.train_epoch(threshold))
    describe("no presort", legacy.train_epoch(threshold))
    describe(
        "media bounce (pre-Bullion)",
        bullion.train_epoch(threshold, use_inline_highlights=False),
    )

    # the rare full-resolution path still works through the video index
    video = bullion.lookup_full_video(0)
    print(f"\nfull-resolution lookup for sample row 0: {len(video):,} bytes "
          f"(via the meta table's video_block/video_index reference)")


if __name__ == "__main__":
    main()
