"""Ads ranking pipeline: wide tables, sparse features, 10% projection.

Recreates the paper's motivating workload (§1, §2.2, §2.3): a table
whose type census matches Table 1, sliding-window ``clk_seq_cids``
sparse features, and a training job that projects ~10% of the columns
into mini-batches.

Run:  python examples/ads_training_pipeline.py
"""

import numpy as np

from repro import BullionReader, BullionWriter, SimulatedStorage, WriterOptions
from repro.encodings import SparseListDelta
from repro.workloads import (
    AdsDataConfig,
    build_ads_schema,
    census_of,
    generate_ads_table,
)


def main() -> None:
    # full production schema is 17,733 columns; a 1% sample keeps the
    # demo fast while preserving the exact type mix of Table 1
    schema = build_ads_schema(scale=0.01)
    print(f"schema: {len(schema.fields)} logical columns "
          f"({len(schema.physical_columns())} physical after flattening)")
    top = sorted(census_of(schema).items(), key=lambda kv: -kv[1])[:3]
    print("top types:", ", ".join(f"{t} x{c}" for t, c in top))

    table = generate_ads_table(schema, AdsDataConfig(rows=512, seq_length=64))

    # sparse list<int64> features use the Fig 4 sliding-window delta
    sparse_cols = {
        col.name: SparseListDelta()
        for col in schema.physical_columns()
        if col.type.list_depth == 1 and col.type.primitive.name == "INT64"
    }
    storage = SimulatedStorage("ads.bullion")
    BullionWriter(
        storage,
        schema=schema,
        options=WriterOptions(
            rows_per_page=256, rows_per_group=512, encodings=sparse_cols
        ),
    ).write(table)
    print(f"file: {storage.size:,} bytes "
          f"({len(sparse_cols)} sparse columns via SparseListDelta)")

    # a training job reads <10% of features (paper: [83])
    reader = BullionReader(storage)
    all_names = reader.column_names()
    projection = all_names[:: 10][: len(all_names) // 10]
    storage.stats.reset()
    batch = reader.project(projection)
    print(
        f"training projection: {len(projection)}/{len(all_names)} columns, "
        f"{batch.num_rows} rows, {storage.stats.bytes_read:,} bytes read "
        f"({100 * storage.stats.bytes_read / storage.size:.1f}% of the file)"
    )

    # mini-batch iteration feeding a (mock) trainer: the scan path
    # streams fixed-size batches while prefetching chunks in parallel
    n_batches = 0
    for mini in reader.scan(projection, batch_size=128, max_workers=4):
        _features = [np.asarray(v, dtype=object) for v in mini.columns.values()]
        n_batches += 1
    print(f"iterated {n_batches} mini-batches via reader.scan()")


if __name__ == "__main__":
    main()
