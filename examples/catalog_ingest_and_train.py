"""Catalog quickstart: concurrent ingest + training at a pinned snapshot.

An ingest thread keeps committing small files to a transactional
table while a trainer pins one snapshot and runs reproducible epochs
over it. A maintenance pass then rolls the small ingest files into
one training-sized file and expires old snapshots — without touching
anything the pinned trainer holds.

Run:  python examples/catalog_ingest_and_train.py
"""

import threading

import numpy as np

from repro import Predicate, Table, WriterOptions
from repro.catalog import (
    CatalogTable,
    MaintenancePolicy,
    MaintenanceService,
    MemoryCatalogStore,
)
from repro.core import LoaderOptions

ROWS_PER_COMMIT = 1_000
N_COMMITS = 8
OPTS = WriterOptions(rows_per_page=256, rows_per_group=1024)


def _batch(start: int, n: int) -> Table:
    rng = np.random.default_rng(start)
    return Table(
        {
            "event_id": np.arange(start, start + n, dtype=np.int64),
            "ctr_score": rng.random(n).astype(np.float32),
        }
    )


def main() -> None:
    # 1. create a table and seed it with the first day of events
    table = CatalogTable.create(MemoryCatalogStore())
    table.append(_batch(0, ROWS_PER_COMMIT * 2), options=OPTS)
    print(
        f"seeded snapshot {table.current_snapshot().snapshot_id}: "
        f"{table.current_snapshot().live_rows:,} rows"
    )

    # 2. ingest keeps committing in the background (optimistic
    # concurrency: racing commits replay on the moved HEAD)
    def ingest() -> None:
        for i in range(N_COMMITS):
            start = (2 + i) * ROWS_PER_COMMIT
            table.append(_batch(start, ROWS_PER_COMMIT), options=OPTS)

    ingester = threading.Thread(target=ingest, name="ingest")

    # 3. the trainer pins HEAD: every epoch sees exactly these rows,
    # no matter what ingest commits meanwhile
    with table.pin() as pinned:
        ingester.start()
        loader = pinned.loader(
            ["event_id", "ctr_score"],
            LoaderOptions(batch_size=512, shuffle_row_groups=True, seed=1),
        )
        for epoch in range(2):
            ids = np.concatenate(
                [np.asarray(b.column("event_id")) for b in loader]
            )
            print(
                f"epoch {epoch}: {len(ids):,} rows at pinned snapshot "
                f"{pinned.snapshot.snapshot_id} "
                f"(checksum {int(ids.sum()):,})"
            )
        ingester.join()

    head = table.current_snapshot()
    print(
        f"ingest finished: HEAD is snapshot {head.snapshot_id} with "
        f"{len(head.files)} files, {head.live_rows:,} rows "
        f"({table.stats.commits} commits, {table.stats.conflicts} replays)"
    )

    # 4. GDPR-style delete runs as a transaction: copy-on-write + the
    # paper's in-place page scrub on the copy; old snapshots unaffected
    snap = table.delete(Predicate("event_id", max_value=499))
    print(
        f"deleted {snap.summary['rows_deleted']} rows -> snapshot "
        f"{snap.snapshot_id}; time travel to snapshot 1 still sees "
        f"{table.read(['event_id'], snapshot_id=1).num_rows:,} rows"
    )

    # 5. maintenance: roll small ingest files together, compact away
    # the deleted rows, expire unreferenced snapshots and files
    service = MaintenanceService(
        table,
        MaintenancePolicy(
            rollup_small_file_rows=2_000,
            rollup_target_rows=10_000,
            compact_deleted_fraction=0.1,
            keep_snapshots=3,
            writer_options=OPTS,
        ),
    )
    for job in service.plan():
        print(f"planned: {job.kind:8s} {job.reason}")
    report = service.run_once()
    head = table.current_snapshot()
    print(
        f"maintenance: merged {report.files_merged} files, "
        f"compacted {report.files_compacted}, reclaimed "
        f"{report.bytes_reclaimed:,} bytes, expired "
        f"{report.snapshots_expired} snapshots -> HEAD has "
        f"{len(head.files)} files, {head.live_rows:,} rows"
    )


if __name__ == "__main__":
    main()
