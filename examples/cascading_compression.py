"""Cascading encoding selection (§2.6, Table 2).

Feeds the selector a handful of realistically-shaped ML columns and
prints which composition it picks per column, under two different
linear objectives (training reads vs cold storage).

Run:  python examples/cascading_compression.py
"""

import numpy as np

from repro.cascading import COLD_STORAGE, TRAINING_READS, select_encoding
from repro.cascading.objective import raw_size_bytes
from repro.workloads import SlidingWindowConfig, generate_click_sequences


def main() -> None:
    rng = np.random.default_rng(9)
    n = 8000
    windows, _ = generate_click_sequences(
        SlidingWindowConfig(n_users=10, events_per_user=20, window_size=128)
    )
    columns = {
        "campaign_id (runs)": np.resize(
            np.repeat(rng.integers(0, 10, 200), rng.integers(10, 80, 200)), n
        ).astype(np.int64),
        "event_ts (sorted)": np.sort(rng.integers(0, 10**9, n)).astype(np.int64),
        "bid_price (decimal)": np.round(rng.uniform(0.01, 9.99, n), 2),
        "embedding_dim (gauss)": np.tanh(rng.normal(size=n)).astype(np.float32),
        "landing_url (strings)": [
            f"https://ads.example/{i % 333}/click".encode() for i in range(4000)
        ],
        "is_fraud (sparse bool)": rng.random(n) < 0.005,
        "clk_seq_cids (windows)": windows,
    }

    for label, weights in (
        ("objective: training reads (read-heavy)", TRAINING_READS),
        ("objective: cold storage (size-heavy)", COLD_STORAGE),
    ):
        print(f"\n{label}")
        print(f"{'column':26s} {'chosen cascade':32s} {'raw':>10} "
              f"{'encoded':>10}  ratio")
        for name, data in columns.items():
            result = select_encoding(data, weights=weights)
            raw = raw_size_bytes(data)
            print(
                f"{name:26s} {result.description:32s} {raw:>10,} "
                f"{result.best.encoded_bytes:>10,}  "
                f"{raw / result.best.encoded_bytes:5.1f}x"
            )


if __name__ == "__main__":
    main()
