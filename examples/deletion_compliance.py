"""Deletion compliance walk-through (§2.1): levels 0/1/2 side by side.

A GDPR erasure request arrives for one user. Compare what each
compliance level does and costs:

* level 0 — plain format: the only option is rewriting the whole file;
* level 1 — deletion vector: instant, but the bytes remain on disk
  ("data remains in existence in storage despite being invisible");
* level 2 — vector + in-place scrub + incremental Merkle update: the
  bytes are destroyed for ~1/25th of the rewrite I/O.

Run:  python examples/deletion_compliance.py
"""

import numpy as np

from repro import (
    BullionReader,
    BullionWriter,
    SimulatedStorage,
    Table,
    WriterOptions,
    delete_rows,
    rewrite_without_rows,
)


def build_file(level: int) -> tuple[SimulatedStorage, Table, np.ndarray]:
    rng = np.random.default_rng(7)
    n = 50_000
    uid = np.sort(rng.integers(0, 1_000, n)).astype(np.int64)
    table = Table(
        {
            "uid": uid,
            "clicked_ad": rng.integers(0, 10**6, n).astype(np.int64),
            "email_hash": [b"h%08d" % i for i in range(n)],
        }
    )
    dev = SimulatedStorage(f"ads_level{level}.bullion")
    BullionWriter(
        dev,
        options=WriterOptions(
            rows_per_page=1000, rows_per_group=10000, compliance_level=level
        ),
    ).write(table)
    victims = np.flatnonzero(uid == 417)  # the user who opted out
    return dev, table, victims


def main() -> None:
    # --- level 0: full rewrite ------------------------------------
    dev0, _t, victims = build_file(level=0)
    target = SimulatedStorage("rewritten.bullion")
    rep0 = rewrite_without_rows(dev0, victims, target)
    print(f"level 0 (full rewrite): {rep0.rows_deleted} rows -> "
          f"read {rep0.bytes_read:,} B, wrote {rep0.bytes_written:,} B")

    # --- level 1: deletion vector only -----------------------------
    dev1, table, victims = build_file(level=1)
    rep1 = delete_rows(dev1, victims, level=1)
    print(f"level 1 (vector only):  {rep1.rows_deleted} rows -> "
          f"wrote {rep1.bytes_written:,} B, 0 pages touched")
    raw = BullionReader(dev1).project(["clicked_ad"], drop_deleted=False)
    leaked = np.array_equal(
        np.asarray(raw.column("clicked_ad"))[victims],
        np.asarray(table.column("clicked_ad"))[victims],
    )
    print(f"  !! user data still physically present: {leaked}")

    # --- level 2: hybrid in-place scrub -----------------------------
    dev2, table, victims = build_file(level=2)
    rep2 = delete_rows(dev2, victims)
    print(f"level 2 (in-place):     {rep2.rows_deleted} rows -> "
          f"read {rep2.bytes_read:,} B, wrote {rep2.bytes_written:,} B, "
          f"{rep2.pages_rewritten} pages scrubbed, "
          f"{rep2.merkle_nodes_recomputed} Merkle nodes updated")
    raw = BullionReader(dev2).project(["clicked_ad"], drop_deleted=False)
    scrubbed = not np.array_equal(
        np.asarray(raw.column("clicked_ad"))[victims],
        np.asarray(table.column("clicked_ad"))[victims],
    )
    print(f"  user data physically destroyed: {scrubbed}")
    print(f"  checksums valid after scrub: {BullionReader(dev2).verify()}")
    print(
        f"\nrewrite-I/O saved by level 2 vs level 0: "
        f"{rep0.bytes_written / max(1, rep2.bytes_written):.1f}x"
    )


if __name__ == "__main__":
    main()
