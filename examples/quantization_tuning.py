"""Storage quantization tuning (§2.4, Fig 6).

Quantizes an embedding table under three strategies — uniform FP16, a
sensitivity-tiered policy, and an error-budget policy — and shows the
dual-column FP32 = 2 x 16-bit decomposition for business-critical
features.

Run:  python examples/quantization_tuning.py
"""

import numpy as np

from repro.quantization import (
    FloatFormat,
    QuantizationError,
    QuantizationPolicy,
    auto_assign,
    error_budget_assign,
    join_bits,
    split_bits,
)
from repro.workloads import EmbeddingConfig, embedding_table


def main() -> None:
    rng = np.random.default_rng(3)
    columns = embedding_table(EmbeddingConfig(n_vectors=5000, dim=24, seed=3))
    print(f"{len(columns)} embedding dimensions x 5000 vectors "
          f"({sum(v.nbytes for v in columns.values()):,} B at FP32)\n")

    # strategy 1: uniform FP16
    uniform = QuantizationPolicy(default=FloatFormat.FP16).apply(columns)
    print(f"uniform FP16:        savings {uniform.savings():5.1%}")

    # strategy 2: sensitivity tiers (importance from the ranking model)
    sensitivities = {name: float(i) for i, name in enumerate(columns)}
    tiered_policy = auto_assign(sensitivities)
    tiered = tiered_policy.apply(columns)
    counts = {}
    for fmt in tiered.formats.values():
        counts[fmt.value] = counts.get(fmt.value, 0) + 1
    print(f"sensitivity tiers:   savings {tiered.savings():5.1%}  "
          f"({', '.join(f'{k}:{v}' for k, v in sorted(counts.items()))})")

    # strategy 3: per-feature error budget measured on the actual data
    budget_policy = error_budget_assign(columns, max_relative_error=5e-3)
    budget = budget_policy.apply(columns)
    print(f"error budget 5e-3:   savings {budget.savings():5.1%}")
    worst = max(
        QuantizationError.measure(v, budget_policy.format_for(k)).mean_relative_error
        for k, v in columns.items()
    )
    print(f"  worst mean relative error across features: {worst:.2e}\n")

    # dual-column decomposition for a business-critical FP32 feature
    critical = columns["dim_0"]
    hi, lo = split_bits(critical)
    print("dual-column FP32 decomposition (business-critical feature):")
    print(f"  hi column alone = BF16 view (cheap models), "
          f"{hi.nbytes:,} B")
    print(f"  1:1 join reconstructs FP32 bit-exactly: "
          f"{np.array_equal(join_bits(hi, lo), critical)}")


if __name__ == "__main__":
    main()
