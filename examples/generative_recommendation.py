"""User-centric event-sequence storage (§2.2's Generative-Rec challenge).

The paper: Generative Recommendation "mandates a paradigm shift from
impression-centric to user-centric data modeling ... novel storage
formats that encapsulate rich temporal sequences of organic user events
and advertising engagement events as a single training example per
user."

This example renders one event log both ways, stores both in Bullion,
and compares what each layout costs to write and to read back for
training — the concrete pressure the paper says forces the redesign.

Run:  python examples/generative_recommendation.py
"""

import numpy as np

from repro import BullionReader, BullionWriter, SimulatedStorage, Table, WriterOptions
from repro.workloads import (
    EventLogConfig,
    generate_event_log,
    impression_centric_table,
    storage_comparison,
    user_centric_table,
)


def write_file(table: Table, name: str) -> SimulatedStorage:
    dev = SimulatedStorage(name)
    BullionWriter(
        dev, options=WriterOptions(rows_per_page=256, rows_per_group=1024)
    ).write(table)
    return dev


def main() -> None:
    log = generate_event_log(
        EventLogConfig(n_users=500, mean_events_per_user=60, seed=11)
    )
    print(f"event log: {len(log):,} events across 500 users")

    imp = impression_centric_table(log)
    usr = user_centric_table(log)
    cmp = storage_comparison(log)
    print(
        f"impression-centric: {cmp['impression_rows']:,} rows "
        f"(binary labels); user-centric: {cmp['user_rows']:,} rows "
        f"(full temporal sequences) -> {cmp['rows_ratio']:.0f}x fewer rows"
    )

    imp_dev = write_file(imp, "impressions.bullion")
    usr_dev = write_file(usr, "users.bullion")
    print(f"impression file: {imp_dev.size:,} B; "
          f"user-centric file: {usr_dev.size:,} B "
          f"(sequences are list<int64> columns)")

    # training read: one user's full history is ONE row in the
    # user-centric file, vs a scattered filter in the impression file
    reader = BullionReader(usr_dev)
    batch = reader.project(["uid", "event_times", "event_types", "event_items"])
    row = 42
    uid = int(np.asarray(batch.column("uid"))[row])
    history = batch.column("event_items")[row]
    print(
        f"user {uid}: one training example with {len(history)} events "
        f"(types {sorted(set(np.asarray(batch.column('event_types')[row]).tolist()))})"
    )

    # the impression-centric path must scan + filter for the same user
    imp_reader = BullionReader(imp_dev)
    imp_batch = imp_reader.project(["uid", "item_id", "label"])
    mask = np.asarray(imp_batch.column("uid")) == uid
    print(
        f"same user in the impression file: {int(mask.sum())} scattered "
        f"rows, {int(np.asarray(imp_batch.column('label'))[mask].sum())} "
        f"conversions"
    )


if __name__ == "__main__":
    main()
